#include "core/exhaustive.h"

#include "common/macros.h"
#include "core/dod.h"

namespace xsact::core {

namespace {

/// Recursively enumerates valid selections group by group.
///
/// Within one group a valid selection is: all entries of the first few
/// tie levels, plus a PROPER subset of the next level (possibly empty).
/// Representing selections this way enumerates each exactly once.
void EnumerateGroupChoices(const ComparisonInstance& instance, int i,
                           size_t group_idx, int size_bound, Dfs* current,
                           std::vector<Dfs>* out) {
  const auto& groups = instance.groups(i);
  if (group_idx == groups.size()) {
    out->push_back(*current);
    return;
  }
  const EntityGroup& group = groups[group_idx];
  const auto& entries = instance.entries(i);

  // Tie levels of this group.
  std::vector<std::pair<int, int>> levels;
  int pos = group.begin;
  while (pos < group.end) {
    int end = pos + 1;
    while (end < group.end &&
           entries[static_cast<size_t>(end)].occurrence ==
               entries[static_cast<size_t>(pos)].occurrence) {
      ++end;
    }
    levels.emplace_back(pos, end);
    pos = end;
  }

  // prefix_level = number of fully selected levels.
  int full_count = 0;
  for (size_t prefix_level = 0; prefix_level <= levels.size();
       ++prefix_level) {
    if (current->size() + full_count <= size_bound) {
      // Select the full prefix.
      std::vector<int> added;
      for (size_t l = 0; l < prefix_level; ++l) {
        for (int e = levels[l].first; e < levels[l].second; ++e) {
          current->Add(e);
          added.push_back(e);
        }
      }
      if (prefix_level == levels.size()) {
        EnumerateGroupChoices(instance, i, group_idx + 1, size_bound, current,
                              out);
      } else {
        // Proper subsets of the boundary level (empty subset included).
        const int lb = levels[prefix_level].first;
        const int le = levels[prefix_level].second;
        const int level_size = le - lb;
        XSACT_CHECK_MSG(level_size <= 20,
                        "tie level too wide for exhaustive enumeration");
        const uint32_t subsets = 1u << level_size;
        for (uint32_t mask = 0; mask + 1 < subsets; ++mask) {  // proper only
          std::vector<int> level_added;
          for (int bit = 0; bit < level_size; ++bit) {
            if (mask & (1u << bit)) {
              current->Add(lb + bit);
              level_added.push_back(lb + bit);
            }
          }
          if (current->size() <= size_bound) {
            EnumerateGroupChoices(instance, i, group_idx + 1, size_bound,
                                  current, out);
          }
          for (int e : level_added) current->Remove(e);
        }
      }
      for (int e : added) current->Remove(e);
    }
    if (prefix_level < levels.size()) {
      full_count += levels[prefix_level].second - levels[prefix_level].first;
      if (current->size() + full_count > size_bound &&
          prefix_level + 1 <= levels.size()) {
        // Even the bare prefix no longer fits; deeper prefixes only grow.
        break;
      }
    }
  }
}

}  // namespace

std::vector<Dfs> ExhaustiveSelector::EnumerateValid(
    const ComparisonInstance& instance, int i, int size_bound) {
  std::vector<Dfs> out;
  Dfs scratch(instance, i);
  EnumerateGroupChoices(instance, i, 0, size_bound, &scratch, &out);
  return out;
}

std::vector<Dfs> ExhaustiveSelector::Select(const ComparisonInstance& instance,
                                            const SelectorOptions& options)
    const {
  const int n = instance.num_results();
  std::vector<std::vector<Dfs>> candidates;
  candidates.reserve(static_cast<size_t>(n));
  int64_t assignments = 1;
  for (int i = 0; i < n; ++i) {
    candidates.push_back(EnumerateValid(instance, i, options.size_bound));
    XSACT_CHECK(!candidates.back().empty());
    assignments *= static_cast<int64_t>(candidates.back().size());
    XSACT_CHECK_MSG(assignments <= kMaxAssignments,
                    "instance too large for exhaustive search");
  }

  std::vector<Dfs> current;
  current.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) current.push_back(candidates[static_cast<size_t>(i)][0]);

  // Incrementally-maintained pair DoD matrix: an odometer step only
  // replaces a suffix of positions, so just those rows are recomputed
  // instead of re-deriving the full O(n^2) objective per assignment.
  std::vector<int64_t> pair_dod(static_cast<size_t>(n) *
                                    static_cast<size_t>(n),
                                0);
  int64_t dod = 0;
  int size = 0;
  for (int i = 0; i < n; ++i) {
    size += current[static_cast<size_t>(i)].size();
    for (int j = i + 1; j < n; ++j) {
      const int64_t d = PairDod(instance, current[static_cast<size_t>(i)],
                                current[static_cast<size_t>(j)]);
      pair_dod[static_cast<size_t>(i) * static_cast<size_t>(n) +
               static_cast<size_t>(j)] = d;
      pair_dod[static_cast<size_t>(j) * static_cast<size_t>(n) +
               static_cast<size_t>(i)] = d;
      dod += d;
    }
  }

  // Re-derives position `p`'s pair row against the current assignment,
  // keeping `dod` and `size` in sync. `replacement` becomes current[p].
  auto replace_position = [&](int p, const Dfs& replacement) {
    Dfs& slot = current[static_cast<size_t>(p)];
    size += replacement.size() - slot.size();
    slot = replacement;
    for (int j = 0; j < n; ++j) {
      if (j == p) continue;
      int64_t& forward = pair_dod[static_cast<size_t>(p) *
                                      static_cast<size_t>(n) +
                                  static_cast<size_t>(j)];
      int64_t& backward = pair_dod[static_cast<size_t>(j) *
                                       static_cast<size_t>(n) +
                                   static_cast<size_t>(p)];
      dod -= forward;
      forward = backward =
          PairDod(instance, slot, current[static_cast<size_t>(j)]);
      dod += forward;
    }
  };

  std::vector<Dfs> best = current;
  // Tie-break by larger total size to match the optimizers' fill behavior.
  int64_t best_dod = dod;
  int best_size = size;

  // Odometer-style enumeration of the cartesian product.
  std::vector<size_t> cursor(static_cast<size_t>(n), 0);
  for (;;) {
    if (dod > best_dod || (dod == best_dod && size > best_size)) {
      best = current;
      best_dod = dod;
      best_size = size;
    }
    // Advance the odometer.
    int pos = n - 1;
    while (pos >= 0) {
      auto& c = cursor[static_cast<size_t>(pos)];
      if (++c < candidates[static_cast<size_t>(pos)].size()) {
        replace_position(pos, candidates[static_cast<size_t>(pos)][c]);
        break;
      }
      c = 0;
      replace_position(pos, candidates[static_cast<size_t>(pos)][0]);
      --pos;
    }
    if (pos < 0) break;
  }
  return best;
}

}  // namespace xsact::core
