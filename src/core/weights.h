// Type weights: the paper's future-work extension ("considering more
// factors (e.g., interestingness) when selecting features for DFS").
//
// The weighted objective generalizes DoD: every feature type t carries a
// weight w(t) in (0, 1], and a differentiable shared type contributes
// w(t) instead of 1 to each pair. With uniform weights the objective
// reduces exactly to the paper's DoD.

#ifndef XSACT_CORE_WEIGHTS_H_
#define XSACT_CORE_WEIGHTS_H_

#include <vector>

#include "core/instance.h"

namespace xsact::core {

/// How type weights are derived from the instance.
enum class WeightScheme {
  /// w(t) = 1 for all types: the paper's plain DoD.
  kUniform,
  /// Interestingness: types whose displayed values VARY across results
  /// (high value entropy) or whose occurrence shares spread widely are
  /// weighted higher; near-constant types sink toward the floor weight.
  kInterestingness,
  /// Significance: a type's weight is its mean relative occurrence across
  /// the results carrying it (favors features true of most entity
  /// instances, e.g. 91% "easy to read" over a 9% fringe opinion).
  kSignificance,
};

/// Display name ("uniform", "interestingness", "significance").
std::string_view WeightSchemeName(WeightScheme scheme);

/// Immutable per-instance weight table.
class TypeWeights {
 public:
  /// Weights never sink to zero: even a "boring" type still separates
  /// results, it just stops dominating the budget.
  static constexpr double kFloor = 0.25;

  /// Computes weights for every type of the instance under `scheme`.
  static TypeWeights Compute(const ComparisonInstance& instance,
                             WeightScheme scheme);

  /// Uniform table (all weights 1).
  static TypeWeights Uniform();

  /// Weight of a type; 1.0 for unknown types. TypeIds are dense catalog
  /// ids, so this is a bounds check plus one array load — cheap enough
  /// for the optimizers' weighted gain inner loop.
  double Of(feature::TypeId type) const {
    return type >= 0 && static_cast<size_t>(type) < by_type_.size()
               ? by_type_[static_cast<size_t>(type)]
               : 1.0;
  }

  /// Sets/overrides one weight (clamped to [kFloor, 1]); exposed so
  /// applications can inject domain knowledge (e.g. boost "price").
  void Set(feature::TypeId type, double weight);

  /// Number of types whose weight was computed or explicitly set.
  size_t size() const { return num_set_; }

 private:
  /// TypeId-indexed weight table; ids outside the vector (or never
  /// computed/set) read as 1.0.
  std::vector<double> by_type_;
  std::vector<bool> is_set_;
  size_t num_set_ = 0;
};

}  // namespace xsact::core

#endif  // XSACT_CORE_WEIGHTS_H_
