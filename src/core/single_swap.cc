#include "core/single_swap.h"

#include "core/dod.h"
#include "core/snippet_selector.h"

namespace xsact::core {

namespace {

/// Validity of one entity group's current selection (same rule as
/// Dfs::IsValid, restricted to the group).
bool GroupValid(const ComparisonInstance& instance, const Dfs& dfs,
                const EntityGroup& group) {
  const auto& entries = instance.entries(dfs.result_index());
  double min_selected = -1;
  bool any = false;
  for (int k = group.begin; k < group.end; ++k) {
    if (dfs.Contains(k)) {
      any = true;
      min_selected = entries[static_cast<size_t>(k)].occurrence;
    }
  }
  if (!any) return true;
  for (int k = group.begin; k < group.end; ++k) {
    const Entry& e = entries[static_cast<size_t>(k)];
    if (e.occurrence <= min_selected) break;
    if (!dfs.Contains(k)) return false;
  }
  return true;
}

struct Move {
  int remove = -1;  // entry index, or -1 for a pure addition
  int add = -1;     // entry index
  int delta = 0;    // DoD change
};

/// Finds the best single add/replace move for result `i`, or a move with
/// delta == 0 when none improves. Gains are evaluated against the other
/// results' CURRENT DFSs (changing D_i does not change its own gains).
Move BestMove(const ComparisonInstance& instance, std::vector<Dfs>& dfss,
              int i, int size_bound) {
  Dfs& dfs = dfss[static_cast<size_t>(i)];
  const auto& entries = instance.entries(i);
  const auto& groups = instance.groups(i);

  // Gain of each type of this result against the fixed other DFSs.
  std::vector<int> gain(entries.size(), 0);
  for (size_t k = 0; k < entries.size(); ++k) {
    gain[k] = TypeGain(instance, dfss, i, entries[k].type_id);
  }

  Move best;
  auto try_move = [&](int remove, int add) {
    const int delta = gain[static_cast<size_t>(add)] -
                      (remove >= 0 ? gain[static_cast<size_t>(remove)] : 0);
    if (delta <= best.delta) return;  // cannot beat current best
    // Validate by applying tentatively.
    if (remove >= 0) dfs.Remove(remove);
    dfs.Add(add);
    const EntityGroup& ga = groups[static_cast<size_t>(
        entries[static_cast<size_t>(add)].group)];
    bool valid = GroupValid(instance, dfs, ga);
    if (valid && remove >= 0) {
      const EntityGroup& gr = groups[static_cast<size_t>(
          entries[static_cast<size_t>(remove)].group)];
      if (gr.begin != ga.begin) valid = GroupValid(instance, dfs, gr);
    }
    dfs.Remove(add);
    if (remove >= 0) dfs.Add(remove);
    if (valid) best = Move{remove, add, delta};
  };

  const std::vector<int> selected = dfs.SelectedEntries();
  for (size_t a = 0; a < entries.size(); ++a) {
    if (dfs.Contains(static_cast<int>(a))) continue;
    if (gain[a] == 0) continue;  // additions/arrivals must bring gain
    if (dfs.size() < size_bound) try_move(-1, static_cast<int>(a));
    for (int o : selected) try_move(o, static_cast<int>(a));
  }
  return best;
}

}  // namespace

std::vector<Dfs> SingleSwapOptimizer::Select(
    const ComparisonInstance& instance, const SelectorOptions& options) const {
  // Paper: start from a reasonable summary and iteratively improve.
  std::vector<Dfs> dfss = SnippetSelector().Select(instance, options);

  // Alternate swap optimization and (optional) filling until neither
  // changes anything. Every optimization move strictly raises total DoD
  // and every fill strictly grows total size with DoD non-decreasing, so
  // the (DoD, total size) potential guarantees termination; max_rounds is
  // only a safety valve.
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    for (int pass = 0; pass < options.max_rounds; ++pass) {
      bool pass_improved = false;
      for (int i = 0; i < instance.num_results(); ++i) {
        // Exhaust improving moves on result i before moving on.
        for (;;) {
          const Move move = BestMove(instance, dfss, i, options.size_bound);
          if (move.delta <= 0) break;
          Dfs& dfs = dfss[static_cast<size_t>(i)];
          if (move.remove >= 0) dfs.Remove(move.remove);
          dfs.Add(move.add);
          pass_improved = true;
          changed = true;
        }
      }
      if (!pass_improved) break;
    }
    if (options.fill_to_bound) {
      const std::vector<Dfs> before = dfss;
      FillToBound(instance, options.size_bound, &dfss);
      if (!(dfss == before)) changed = true;
    }
    if (!changed) break;
  }
  return dfss;
}

bool SingleSwapOptimizer::HasImprovingMove(const ComparisonInstance& instance,
                                           const std::vector<Dfs>& dfss,
                                           int size_bound) {
  std::vector<Dfs> copy = dfss;
  for (int i = 0; i < instance.num_results(); ++i) {
    if (BestMove(instance, copy, i, size_bound).delta > 0) return true;
  }
  return false;
}

}  // namespace xsact::core
