#include "core/single_swap.h"

#include "core/dod.h"
#include "core/selection_state.h"
#include "core/snippet_selector.h"

namespace xsact::core {

namespace {

/// Validity of one entity group's current selection (same rule as
/// Dfs::IsValid, restricted to the group).
bool GroupValid(const ComparisonInstance& instance, const Dfs& dfs,
                const EntityGroup& group) {
  const auto& entries = instance.entries(dfs.result_index());
  double min_selected = -1;
  bool any = false;
  for (int k = group.begin; k < group.end; ++k) {
    if (dfs.Contains(k)) {
      any = true;
      min_selected = entries[static_cast<size_t>(k)].occurrence;
    }
  }
  if (!any) return true;
  for (int k = group.begin; k < group.end; ++k) {
    const Entry& e = entries[static_cast<size_t>(k)];
    if (e.occurrence <= min_selected) break;
    if (!dfs.Contains(k)) return false;
  }
  return true;
}

struct Move {
  int remove = -1;  // entry index, or -1 for a pure addition
  int add = -1;     // entry index
  int delta = 0;    // DoD change
};

/// Per-result cache of entry gains, keyed by the selection masks' version
/// counters: an entry's gain is refreshed only when its type's selected
/// mask changed since the last visit, so repeated BestMove calls touch
/// only the types perturbed by intervening moves.
struct GainCache {
  std::vector<int> gain;
  std::vector<uint32_t> seen;  // SelectionState version, 0 = never seen
  // Versions at the result's last NON-IMPROVING BestMove; while they all
  // still match, revisiting the result is provably a no-op (gains and the
  // DFS itself are unchanged) and the whole move enumeration is skipped.
  std::vector<uint32_t> settled;

  void Reset(size_t num_entries) {
    gain.assign(num_entries, 0);
    seen.assign(num_entries, 0);
    settled.clear();
  }

  bool Settled(const SelectionState& state,
               const std::vector<Entry>& entries) const {
    if (settled.empty() && !entries.empty()) return false;
    for (size_t k = 0; k < entries.size(); ++k) {
      if (settled[k] != state.Version(entries[k].dense_type)) return false;
    }
    return true;
  }

  void MarkSettled(const SelectionState& state,
                   const std::vector<Entry>& entries) {
    settled.resize(entries.size());
    for (size_t k = 0; k < entries.size(); ++k) {
      settled[k] = state.Version(entries[k].dense_type);
    }
  }
};

/// Finds the best single add/replace move for result `i`, or a move with
/// delta == 0 when none improves. Gains are evaluated against the other
/// results' CURRENT DFSs (changing D_i does not change its own gains).
/// `dfs` must be the mutable DFS the state wraps for result i; tentative
/// validity probes mutate it directly and roll back, never touching the
/// masks.
Move BestMove(const SelectionState& state, Dfs& dfs, int i, int size_bound,
              GainCache& cache) {
  const ComparisonInstance& instance = state.instance();
  const auto& entries = instance.entries(i);
  const auto& groups = instance.groups(i);

  // Refresh stale gains: one popcount per entry whose type mask moved.
  for (size_t k = 0; k < entries.size(); ++k) {
    const int dense = entries[k].dense_type;
    const uint32_t version = state.Version(dense);
    if (cache.seen[k] != version) {
      cache.gain[k] = state.TypeGain(i, dense);
      cache.seen[k] = version;
    }
  }
  const std::vector<int>& gain = cache.gain;

  Move best;
  auto try_move = [&](int remove, int add) {
    const int delta = gain[static_cast<size_t>(add)] -
                      (remove >= 0 ? gain[static_cast<size_t>(remove)] : 0);
    if (delta <= best.delta) return;  // cannot beat current best
    // Validate by applying tentatively.
    if (remove >= 0) dfs.Remove(remove);
    dfs.Add(add);
    const EntityGroup& ga = groups[static_cast<size_t>(
        entries[static_cast<size_t>(add)].group)];
    bool valid = GroupValid(instance, dfs, ga);
    if (valid && remove >= 0) {
      const EntityGroup& gr = groups[static_cast<size_t>(
          entries[static_cast<size_t>(remove)].group)];
      if (gr.begin != ga.begin) valid = GroupValid(instance, dfs, gr);
    }
    dfs.Remove(add);
    if (remove >= 0) dfs.Add(remove);
    if (valid) best = Move{remove, add, delta};
  };

  const std::vector<int> selected = dfs.SelectedEntries();
  for (size_t a = 0; a < entries.size(); ++a) {
    if (dfs.Contains(static_cast<int>(a))) continue;
    if (gain[a] == 0) continue;  // additions/arrivals must bring gain
    if (dfs.size() < size_bound) try_move(-1, static_cast<int>(a));
    for (int o : selected) try_move(o, static_cast<int>(a));
  }
  return best;
}

}  // namespace

std::vector<Dfs> SingleSwapOptimizer::Select(
    const ComparisonInstance& instance, const SelectorOptions& options) const {
  // Paper: start from a reasonable summary and iteratively improve.
  std::vector<Dfs> dfss = SnippetSelector().Select(instance, options);

  const int n = instance.num_results();
  SelectionState state(instance, &dfss);
  std::vector<GainCache> caches(static_cast<size_t>(n));
  const auto reset_caches = [&] {
    for (int i = 0; i < n; ++i) {
      caches[static_cast<size_t>(i)].Reset(instance.entries(i).size());
    }
  };
  reset_caches();

  // Alternate swap optimization and (optional) filling until neither
  // changes anything. Every optimization move strictly raises total DoD
  // and every fill strictly grows total size with DoD non-decreasing, so
  // the (DoD, total size) potential guarantees termination; max_rounds is
  // only a safety valve.
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    for (int pass = 0; pass < options.max_rounds; ++pass) {
      bool pass_improved = false;
      for (int i = 0; i < n; ++i) {
        GainCache& cache = caches[static_cast<size_t>(i)];
        if (cache.Settled(state, instance.entries(i))) continue;
        // Exhaust improving moves on result i before moving on.
        for (;;) {
          const Move move = BestMove(state, dfss[static_cast<size_t>(i)], i,
                                     options.size_bound, cache);
          if (move.delta <= 0) {
            cache.MarkSettled(state, instance.entries(i));
            break;
          }
          if (move.remove >= 0) state.Remove(i, move.remove);
          state.Add(i, move.add);
          pass_improved = true;
          changed = true;
        }
      }
      if (!pass_improved) break;
    }
    if (options.fill_to_bound) {
      const std::vector<Dfs> before = dfss;
      FillToBound(instance, options.size_bound, &dfss);
      if (!(dfss == before)) {
        changed = true;
        // The fill bypassed the state; rebuild masks and drop the caches.
        state = SelectionState(instance, &dfss);
        reset_caches();
      }
    }
    if (!changed) break;
  }
  return dfss;
}

bool SingleSwapOptimizer::HasImprovingMove(const ComparisonInstance& instance,
                                           const std::vector<Dfs>& dfss,
                                           int size_bound) {
  std::vector<Dfs> copy = dfss;
  SelectionState state(instance, &copy);
  for (int i = 0; i < instance.num_results(); ++i) {
    GainCache cache;
    cache.Reset(instance.entries(i).size());
    if (BestMove(state, copy[static_cast<size_t>(i)], i, size_bound, cache)
            .delta > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace xsact::core
