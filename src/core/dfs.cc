#include "core/dfs.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xsact::core {

Dfs::Dfs(const ComparisonInstance& instance, int result_index)
    : result_index_(result_index),
      words_(static_cast<size_t>(bits::WordsFor(static_cast<int>(
                 instance.entries(result_index).size()))),
             0) {}

void Dfs::Add(int entry_index) {
  if (!bits::Test(words_.data(), entry_index)) {
    bits::Set(words_.data(), entry_index);
    ++size_;
  }
}

void Dfs::Remove(int entry_index) {
  if (bits::Test(words_.data(), entry_index)) {
    bits::Clear(words_.data(), entry_index);
    --size_;
  }
}

std::vector<int> Dfs::SelectedEntries() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(size_));
  ForEachSelected([&](int i) { out.push_back(i); });
  return out;
}

std::vector<feature::TypeId> Dfs::SelectedTypes(
    const ComparisonInstance& instance) const {
  const auto& entries = instance.entries(result_index_);
  std::vector<feature::TypeId> out;
  out.reserve(static_cast<size_t>(size_));
  ForEachSelected(
      [&](int i) { out.push_back(entries[static_cast<size_t>(i)].type_id); });
  return out;
}

bool Dfs::IsValid(const ComparisonInstance& instance) const {
  const auto& entries = instance.entries(result_index_);
  for (const EntityGroup& group : instance.groups(result_index_)) {
    // Entries are sorted by occurrence desc inside the group. Find the
    // smallest occurrence among selected entries, then make sure no
    // unselected entry is strictly more significant.
    double min_selected = -1;
    bool any_selected = false;
    for (int k = group.begin; k < group.end; ++k) {
      if (Contains(k)) {
        any_selected = true;
        min_selected = entries[static_cast<size_t>(k)].occurrence;
      }
    }
    if (!any_selected) continue;
    for (int k = group.begin; k < group.end; ++k) {
      const Entry& e = entries[static_cast<size_t>(k)];
      if (e.occurrence <= min_selected) break;  // sorted: nothing bigger left
      if (!Contains(k)) return false;
    }
  }
  return true;
}

std::string Dfs::ToString(const ComparisonInstance& instance) const {
  const auto& entries = instance.entries(result_index_);
  const auto& catalog = instance.catalog();
  std::vector<std::string> parts;
  for (const int idx : SelectedEntries()) {
    const Entry& e = entries[static_cast<size_t>(idx)];
    std::string part = catalog.TypeName(e.type_id);
    double rel = e.RelOccurrence();
    if (e.dominant_value != feature::kInvalidValueId) {
      part += "=" + catalog.ValueOf(e.dominant_value);
      // Show the displayed value's share, matching the comparison table.
      const feature::TypeStats* stats =
          instance.result(result_index_).Find(e.type_id);
      if (stats != nullptr) {
        rel = stats->RelativeOccurrenceOf(e.dominant_value);
      }
    }
    part += " (" + FormatDouble(100.0 * rel, 0) + "%)";
    parts.push_back(std::move(part));
  }
  return "{" + Join(parts, ", ") + "}";
}

bool AllValid(const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
              int size_bound) {
  if (static_cast<int>(dfss.size()) != instance.num_results()) return false;
  for (int i = 0; i < instance.num_results(); ++i) {
    const Dfs& d = dfss[static_cast<size_t>(i)];
    if (d.result_index() != i) return false;
    if (d.size() > size_bound) return false;
    if (!d.IsValid(instance)) return false;
  }
  return true;
}

}  // namespace xsact::core
