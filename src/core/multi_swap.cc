#include "core/multi_swap.h"

#include <algorithm>

#include "common/macros.h"
#include "core/dod.h"
#include "core/selection_state.h"
#include "core/snippet_selector.h"

namespace xsact::core {

namespace {

/// Strict-improvement epsilon for weighted (floating-point) gains;
/// uniform-weight gains are small integers, which doubles represent
/// exactly, so the epsilon never misorders the unweighted DP.
constexpr double kGainEps = 1e-9;

/// (gain, size) pair ordered lexicographically; the DP value domain.
struct Value {
  double gain = -1;  // -1 marks "unreachable"
  int size = 0;

  bool Reachable() const { return gain >= 0; }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.gain < b.gain - kGainEps) return true;
    if (b.gain < a.gain - kGainEps) return false;
    return a.size < b.size;
  }
};

/// Per-group planner: for each k (number of selected types in the group)
/// the best achievable gain, with the realizing choice recomputed on
/// demand — only the DP's final reconstruction needs one concrete k per
/// group, so materializing every candidate set up front would be wasted
/// allocation on the hot path.
///
/// The per-k walk (full tie levels in entry order, then the top of the
/// boundary level in gain order) deliberately accumulates gains in the
/// exact same sequence for every k, keeping floating-point results
/// bit-identical across refactors of this planner.
struct GroupPlanner {
  // best[k] = max gain using exactly k types of this group (k <= size()).
  std::vector<double> best;
  // Entry indices of the group sorted per tie level by (gain desc,
  // stable), concatenated in level order; level l spans
  // [level_begin[l], level_begin[l + 1]).
  std::vector<int> sorted;
  std::vector<int> level_begin;

  /// Plans one entity group. `gain` is indexed by entry.
  void Plan(const EntityGroup& group, const std::vector<Entry>& entries,
            const std::vector<double>& gain, int max_k) {
    const int limit = std::min(max_k, group.size());
    best.assign(static_cast<size_t>(limit) + 1, 0);

    // Split the group into tie levels (equal occurrence runs) and sort
    // each level's entries by gain once (the seed re-sorted the boundary
    // level for every k; the stable comparator makes both identical).
    sorted.clear();
    level_begin.clear();
    int pos = group.begin;
    while (pos < group.end) {
      int end = pos + 1;
      while (end < group.end &&
             entries[static_cast<size_t>(end)].occurrence ==
                 entries[static_cast<size_t>(pos)].occurrence) {
        ++end;
      }
      level_begin.push_back(static_cast<int>(sorted.size()));
      for (int e = pos; e < end; ++e) sorted.push_back(e);
      std::stable_sort(sorted.begin() + level_begin.back(), sorted.end(),
                       [&](int a, int b) {
                         return gain[static_cast<size_t>(a)] >
                                gain[static_cast<size_t>(b)] + kGainEps;
                       });
      pos = end;
    }
    level_begin.push_back(static_cast<int>(sorted.size()));

    for (int k = 1; k <= limit; ++k) {
      // Take full levels until the boundary level containing the k-th
      // slot, then the highest-gain types within the boundary level.
      // Within one level choices are independent, so greedy top-k is
      // exact.
      double total = 0;
      int remaining = k;
      ForChoice(group, k, [&](int e) {
        total += gain[static_cast<size_t>(e)];
        --remaining;
      });
      XSACT_CHECK(remaining == 0);
      best[static_cast<size_t>(k)] = total;
    }
  }

  /// Calls fn(entry) for each entry of the size-k optimum, in the
  /// deterministic pick order (full levels in entry order, boundary
  /// level sorted).
  template <typename Fn>
  void ForChoice(const EntityGroup& group, int k, Fn&& fn) const {
    int remaining = k;
    const int num_levels = static_cast<int>(level_begin.size()) - 1;
    int entry_pos = group.begin;
    for (int l = 0; l < num_levels && remaining > 0; ++l) {
      const int level_size = level_begin[static_cast<size_t>(l) + 1] -
                             level_begin[static_cast<size_t>(l)];
      if (remaining >= level_size) {
        // Full level: entry order.
        for (int e = entry_pos; e < entry_pos + level_size; ++e) fn(e);
        remaining -= level_size;
      } else {
        // Boundary level: top-remaining of the sorted order.
        for (int r = 0; r < remaining; ++r) {
          fn(sorted[static_cast<size_t>(level_begin[static_cast<size_t>(l)] +
                                        r)]);
        }
        remaining = 0;
      }
      entry_pos += level_size;
    }
  }
};

/// Reusable scratch for OptimizeWithGains: the round-robin loop visits
/// every result each round, so per-visit allocations of the planners and
/// DP tables would dominate once gains are popcounts.
struct DpWorkspace {
  std::vector<GroupPlanner> planners;
  std::vector<Value> dp;
  std::vector<Value> next;
  std::vector<int> choice;  // [group * (budget + 1) + b]
  std::vector<double> gain;
};

/// The exact per-result DP over per-entry gains.
Dfs OptimizeWithGains(const ComparisonInstance& instance, int i,
                      int size_bound, const std::vector<double>& gain,
                      DpWorkspace& ws) {
  const auto& groups = instance.groups(i);
  const auto& entries = instance.entries(i);

  if (ws.planners.size() < groups.size()) ws.planners.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    ws.planners[g].Plan(groups[g], entries, gain, size_bound);
  }

  // Multiple-choice knapsack over groups. dp[b] = best Value with total
  // size exactly b after processing a prefix of groups; parent pointers
  // record the per-group allocation for reconstruction.
  const size_t budget = static_cast<size_t>(size_bound);
  ws.dp.assign(budget + 1, Value{});
  ws.dp[0] = Value{0, 0};
  ws.choice.assign(groups.size() * (budget + 1), -1);

  for (size_t g = 0; g < groups.size(); ++g) {
    ws.next.assign(budget + 1, Value{});
    for (size_t b = 0; b <= budget; ++b) {
      if (!ws.dp[b].Reachable()) continue;
      const size_t max_k =
          std::min(budget - b, ws.planners[g].best.size() - 1);
      for (size_t k = 0; k <= max_k; ++k) {
        Value candidate{ws.dp[b].gain + ws.planners[g].best[k],
                        ws.dp[b].size + static_cast<int>(k)};
        if (ws.next[b + k] < candidate) {
          ws.next[b + k] = candidate;
          ws.choice[g * (budget + 1) + b + k] = static_cast<int>(k);
        }
      }
    }
    std::swap(ws.dp, ws.next);
  }

  // Best budget <= L.
  size_t best_b = 0;
  for (size_t b = 1; b <= budget; ++b) {
    if (ws.dp[b].Reachable() && ws.dp[best_b] < ws.dp[b]) best_b = b;
  }

  // Reconstruct: one concrete choice per group.
  Dfs result(instance, i);
  size_t b = best_b;
  for (size_t g = groups.size(); g-- > 0;) {
    const int k = ws.choice[g * (budget + 1) + b];
    XSACT_CHECK(k >= 0 || b == 0);
    if (k > 0) {
      ws.planners[g].ForChoice(groups[g], k, [&](int e) { result.Add(e); });
      b -= static_cast<size_t>(k);
    }
  }
  XSACT_CHECK(b == 0);
  return result;
}

/// Per-entry gains of result i against the state's current assignment:
/// one popcount per entry instead of a partner scan.
void GainsFromState(const SelectionState& state, int i,
                    const TypeWeights& weights, std::vector<double>* gain) {
  const auto& entries = state.instance().entries(i);
  gain->assign(entries.size(), 0);
  for (size_t k = 0; k < entries.size(); ++k) {
    (*gain)[k] = state.WeightedTypeGain(i, entries[k].dense_type, weights);
  }
}

/// Round-robin fixpoint loop shared by the weighted and unweighted
/// optimizers. An update is accepted only when it improves (gain, size)
/// lexicographically, so the potential (total weighted DoD, total size)
/// strictly increases and iteration terminates. The SelectionState keeps
/// per-type selection masks in lockstep with the assignment, so the gain
/// vector of each visit is a row of popcounts rather than a rescan of
/// every partner DFS.
std::vector<Dfs> SelectLoop(const ComparisonInstance& instance,
                            const SelectorOptions& options,
                            const TypeWeights& weights) {
  std::vector<Dfs> dfss = SnippetSelector().Select(instance, options);
  SelectionState state(instance, &dfss);

  // Last-visit snapshot of each entry's type-mask version, per result.
  // When no version moved since the previous visit, that visit's gains —
  // and therefore its DP outcome — are provably unchanged, so the whole
  // re-optimization is a no-op and is skipped. (A result's own mask bits
  // never feed its own gains: the diff rows' diagonal is clear.)
  std::vector<std::vector<uint32_t>> seen(
      static_cast<size_t>(instance.num_results()));
  DpWorkspace ws;

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < instance.num_results(); ++i) {
      const auto& entries = instance.entries(i);
      auto& snapshot = seen[static_cast<size_t>(i)];
      if (!snapshot.empty()) {
        bool dirty = false;
        for (size_t k = 0; k < entries.size(); ++k) {
          if (snapshot[k] != state.Version(entries[k].dense_type)) {
            dirty = true;
            break;
          }
        }
        if (!dirty) continue;
      }
      GainsFromState(state, i, weights, &ws.gain);
      const std::vector<double>& gain = ws.gain;
      Dfs candidate =
          OptimizeWithGains(instance, i, options.size_bound, gain, ws);
      double current_gain = 0;
      const Dfs& current = dfss[static_cast<size_t>(i)];
      current.ForEachSelected(
          [&](int e) { current_gain += gain[static_cast<size_t>(e)]; });
      double candidate_gain = 0;
      candidate.ForEachSelected(
          [&](int e) { candidate_gain += gain[static_cast<size_t>(e)]; });
      const Value cur{current_gain, current.size()};
      const Value cand{candidate_gain, candidate.size()};
      if (cur < cand) {
        state.Assign(i, candidate);
        improved = true;
      }
      // Snapshot AFTER a potential accept, so the result's own version
      // bumps (which cannot change its own gains) don't re-dirty it.
      snapshot.resize(entries.size());
      for (size_t k = 0; k < entries.size(); ++k) {
        snapshot[k] = state.Version(entries[k].dense_type);
      }
    }
    if (!improved) break;
  }
  return dfss;
}

}  // namespace

Dfs MultiSwapOptimizer::OptimizeOne(const ComparisonInstance& instance,
                                    const std::vector<Dfs>& dfss, int i,
                                    int size_bound) {
  return OptimizeOneWeighted(instance, dfss, i, size_bound,
                             TypeWeights::Uniform());
}

Dfs MultiSwapOptimizer::OptimizeOneWeighted(const ComparisonInstance& instance,
                                            const std::vector<Dfs>& dfss,
                                            int i, int size_bound,
                                            const TypeWeights& weights) {
  const SelectionState state(instance, dfss);
  DpWorkspace ws;
  GainsFromState(state, i, weights, &ws.gain);
  return OptimizeWithGains(instance, i, size_bound, ws.gain, ws);
}

std::vector<Dfs> MultiSwapOptimizer::Select(const ComparisonInstance& instance,
                                            const SelectorOptions& options)
    const {
  return SelectLoop(instance, options, TypeWeights::Uniform());
}

std::vector<Dfs> WeightedMultiSwapOptimizer::Select(
    const ComparisonInstance& instance, const SelectorOptions& options) const {
  const TypeWeights weights = TypeWeights::Compute(instance, scheme_);
  return SelectLoop(instance, options, weights);
}

}  // namespace xsact::core
