#include "core/multi_swap.h"

#include <algorithm>

#include "common/macros.h"
#include "core/dod.h"
#include "core/snippet_selector.h"

namespace xsact::core {

namespace {

/// Strict-improvement epsilon for weighted (floating-point) gains;
/// uniform-weight gains are small integers, which doubles represent
/// exactly, so the epsilon never misorders the unweighted DP.
constexpr double kGainEps = 1e-9;

/// (gain, size) pair ordered lexicographically; the DP value domain.
struct Value {
  double gain = -1;  // -1 marks "unreachable"
  int size = 0;

  bool Reachable() const { return gain >= 0; }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.gain < b.gain - kGainEps) return true;
    if (b.gain < a.gain - kGainEps) return false;
    return a.size < b.size;
  }
};

/// Per-group precomputation: for each k (number of selected types in the
/// group), the best achievable gain and the concrete choice realizing it.
struct GroupPlan {
  // best[k] = max gain using exactly k types of this group (k <= size()).
  std::vector<double> best;
  // chosen[k] = entry indices realizing best[k].
  std::vector<std::vector<int>> chosen;
};

/// Builds the plan for one entity group. `gain` is indexed by entry.
GroupPlan PlanGroup(const ComparisonInstance& instance, int i,
                    const EntityGroup& group, const std::vector<double>& gain,
                    int max_k) {
  const auto& entries = instance.entries(i);
  GroupPlan plan;
  const int limit = std::min(max_k, group.size());
  plan.best.assign(static_cast<size_t>(limit) + 1, 0);
  plan.chosen.assign(static_cast<size_t>(limit) + 1, {});

  // Split the group into tie levels (equal occurrence runs).
  struct Level {
    int begin;
    int end;
  };
  std::vector<Level> levels;
  int pos = group.begin;
  while (pos < group.end) {
    int end = pos + 1;
    while (end < group.end &&
           entries[static_cast<size_t>(end)].occurrence ==
               entries[static_cast<size_t>(pos)].occurrence) {
      ++end;
    }
    levels.push_back(Level{pos, end});
    pos = end;
  }

  for (int k = 1; k <= limit; ++k) {
    // Take full levels until the boundary level containing the k-th slot,
    // then the highest-gain types within the boundary level. Within one
    // level choices are independent, so the greedy top-k is exact.
    double total = 0;
    std::vector<int> picked;
    int remaining = k;
    for (const Level& level : levels) {
      const int level_size = level.end - level.begin;
      if (remaining >= level_size) {
        for (int e = level.begin; e < level.end; ++e) {
          total += gain[static_cast<size_t>(e)];
          picked.push_back(e);
        }
        remaining -= level_size;
        if (remaining == 0) break;
      } else {
        std::vector<int> idx;
        idx.reserve(static_cast<size_t>(level_size));
        for (int e = level.begin; e < level.end; ++e) idx.push_back(e);
        std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
          return gain[static_cast<size_t>(a)] >
                 gain[static_cast<size_t>(b)] + kGainEps;
        });
        for (int r = 0; r < remaining; ++r) {
          total += gain[static_cast<size_t>(idx[static_cast<size_t>(r)])];
          picked.push_back(idx[static_cast<size_t>(r)]);
        }
        remaining = 0;
        break;
      }
    }
    XSACT_CHECK(remaining == 0);
    plan.best[static_cast<size_t>(k)] = total;
    plan.chosen[static_cast<size_t>(k)] = std::move(picked);
  }
  return plan;
}

/// The exact per-result DP over per-entry gains.
Dfs OptimizeWithGains(const ComparisonInstance& instance, int i,
                      int size_bound, const std::vector<double>& gain) {
  const auto& groups = instance.groups(i);

  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());
  for (const EntityGroup& g : groups) {
    plans.push_back(PlanGroup(instance, i, g, gain, size_bound));
  }

  // Multiple-choice knapsack over groups. dp[b] = best Value with total
  // size exactly b after processing a prefix of groups; parent pointers
  // record the per-group allocation for reconstruction.
  const size_t budget = static_cast<size_t>(size_bound);
  std::vector<Value> dp(budget + 1);
  dp[0] = Value{0, 0};
  std::vector<std::vector<int>> choice(
      plans.size(), std::vector<int>(budget + 1, -1));

  for (size_t g = 0; g < plans.size(); ++g) {
    std::vector<Value> next(budget + 1, Value{});
    for (size_t b = 0; b <= budget; ++b) {
      if (!dp[b].Reachable()) continue;
      const size_t max_k = std::min(budget - b, plans[g].best.size() - 1);
      for (size_t k = 0; k <= max_k; ++k) {
        Value candidate{dp[b].gain + plans[g].best[k],
                        dp[b].size + static_cast<int>(k)};
        if (next[b + k] < candidate) {
          next[b + k] = candidate;
          choice[g][b + k] = static_cast<int>(k);
        }
      }
    }
    dp = std::move(next);
  }

  // Best budget <= L.
  size_t best_b = 0;
  for (size_t b = 1; b <= budget; ++b) {
    if (dp[b].Reachable() && dp[best_b] < dp[b]) best_b = b;
  }

  // Reconstruct.
  Dfs result(instance, i);
  size_t b = best_b;
  for (size_t g = plans.size(); g-- > 0;) {
    const int k = choice[g][b];
    XSACT_CHECK(k >= 0 || b == 0);
    if (k > 0) {
      for (int e : plans[g].chosen[static_cast<size_t>(k)]) result.Add(e);
      b -= static_cast<size_t>(k);
    }
  }
  XSACT_CHECK(b == 0);
  return result;
}

/// Round-robin fixpoint loop shared by the weighted and unweighted
/// optimizers. An update is accepted only when it improves (gain, size)
/// lexicographically, so the potential (total weighted DoD, total size)
/// strictly increases and iteration terminates.
std::vector<Dfs> SelectLoop(const ComparisonInstance& instance,
                            const SelectorOptions& options,
                            const TypeWeights& weights) {
  std::vector<Dfs> dfss = SnippetSelector().Select(instance, options);

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < instance.num_results(); ++i) {
      Dfs candidate = MultiSwapOptimizer::OptimizeOneWeighted(
          instance, dfss, i, options.size_bound, weights);
      double current_gain = 0;
      const Dfs& current = dfss[static_cast<size_t>(i)];
      for (feature::TypeId t : current.SelectedTypes(instance)) {
        current_gain += WeightedTypeGain(instance, dfss, i, t, weights);
      }
      double candidate_gain = 0;
      for (feature::TypeId t : candidate.SelectedTypes(instance)) {
        candidate_gain += WeightedTypeGain(instance, dfss, i, t, weights);
      }
      const Value cur{current_gain, current.size()};
      const Value cand{candidate_gain, candidate.size()};
      if (cur < cand) {
        dfss[static_cast<size_t>(i)] = std::move(candidate);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return dfss;
}

}  // namespace

Dfs MultiSwapOptimizer::OptimizeOne(const ComparisonInstance& instance,
                                    const std::vector<Dfs>& dfss, int i,
                                    int size_bound) {
  return OptimizeOneWeighted(instance, dfss, i, size_bound,
                             TypeWeights::Uniform());
}

Dfs MultiSwapOptimizer::OptimizeOneWeighted(const ComparisonInstance& instance,
                                            const std::vector<Dfs>& dfss,
                                            int i, int size_bound,
                                            const TypeWeights& weights) {
  const auto& entries = instance.entries(i);
  std::vector<double> gain(entries.size(), 0);
  for (size_t k = 0; k < entries.size(); ++k) {
    gain[k] = WeightedTypeGain(instance, dfss, i, entries[k].type_id, weights);
  }
  return OptimizeWithGains(instance, i, size_bound, gain);
}

std::vector<Dfs> MultiSwapOptimizer::Select(const ComparisonInstance& instance,
                                            const SelectorOptions& options)
    const {
  return SelectLoop(instance, options, TypeWeights::Uniform());
}

std::vector<Dfs> WeightedMultiSwapOptimizer::Select(
    const ComparisonInstance& instance, const SelectorOptions& options) const {
  const TypeWeights weights = TypeWeights::Compute(instance, scheme_);
  return SelectLoop(instance, options, weights);
}

}  // namespace xsact::core
