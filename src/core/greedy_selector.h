// GreedySelector: global greedy baseline.
//
// Starting from empty DFSs, repeatedly performs the single valid feature
// addition (across ALL results) with the largest POTENTIAL gain: the
// number of other results that carry the same type with differentiable
// occurrences, whether or not their DFS currently shows it. The
// optimistic gain sidesteps the cold-start problem of exact marginal
// gains (which are all zero while every DFS is empty) but overestimates
// whenever a partner never ends up displaying the type — which is
// exactly the weakness the swap algorithms fix. Included as the
// mid-strength baseline for the ablation benchmarks.

#ifndef XSACT_CORE_GREEDY_SELECTOR_H_
#define XSACT_CORE_GREEDY_SELECTOR_H_

#include "core/selector.h"

namespace xsact::core {

class GreedySelector : public DfsSelector {
 public:
  std::string_view name() const override { return "greedy"; }
  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;
};

}  // namespace xsact::core

#endif  // XSACT_CORE_GREEDY_SELECTOR_H_
