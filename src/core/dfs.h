// Dfs: a Differentiation Feature Set for one result, plus the validity
// predicate of Definition 1(2) in the paper.
//
// A DFS is a subset of the result's entries (see instance.h). It is VALID
// iff, within every entity group, no unselected entry has a strictly
// larger occurrence than some selected entry — i.e. feature types are
// taken in significance order, with free choice only inside tie groups.
//
// The selection bitmap is stored as packed uint64_t words so membership
// tests are single bit probes and iteration is a ctz loop; with the
// instance's dense type -> entry table, ContainsType is O(1) after the
// one-time dense-index resolution.

#ifndef XSACT_CORE_DFS_H_
#define XSACT_CORE_DFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"

namespace xsact::core {

/// One result's selected feature set.
class Dfs {
 public:
  Dfs() = default;

  /// An empty DFS for result `result_index` of `instance`.
  Dfs(const ComparisonInstance& instance, int result_index);

  int result_index() const { return result_index_; }

  /// Number of selected features (|D| of the paper).
  int size() const { return size_; }

  /// True iff entry `entry_index` is selected.
  bool Contains(int entry_index) const {
    return bits::Test(words_.data(), entry_index);
  }

  /// True iff the feature type is selected (type present and its entry
  /// selected).
  bool ContainsType(const ComparisonInstance& instance,
                    feature::TypeId t) const {
    const int idx = instance.EntryIndexOfType(result_index_, t);
    return idx >= 0 && Contains(idx);
  }

  /// O(1) dense-index variant used by the hot paths.
  bool ContainsDenseType(const ComparisonInstance& instance,
                         int dense_type) const {
    const int idx = instance.EntryIndexOfDenseType(result_index_, dense_type);
    return idx >= 0 && Contains(idx);
  }

  /// Selects / deselects an entry (no validity enforcement here; callers
  /// use IsValid / the algorithms maintain it).
  void Add(int entry_index);
  void Remove(int entry_index);

  /// Selected entry indices in ascending order.
  std::vector<int> SelectedEntries() const;

  /// Calls fn(entry_index) for each selected entry in ascending order
  /// (allocation-free iteration for the hot paths).
  template <typename Fn>
  void ForEachSelected(Fn&& fn) const {
    bits::ForEachBit(words_.data(), static_cast<int>(words_.size()), fn);
  }

  /// Selected feature types (ascending entry order).
  std::vector<feature::TypeId> SelectedTypes(
      const ComparisonInstance& instance) const;

  /// Validity per Definition 1(2): within each entity group of the result,
  /// selected types must be a significance-downward-closed set.
  bool IsValid(const ComparisonInstance& instance) const;

  /// Human-readable listing, e.g. "{review.pro: compact (73%), ...}".
  std::string ToString(const ComparisonInstance& instance) const;

  friend bool operator==(const Dfs& a, const Dfs& b) {
    return a.result_index_ == b.result_index_ && a.words_ == b.words_;
  }

 private:
  int result_index_ = -1;
  int size_ = 0;
  std::vector<uint64_t> words_;  // over instance.entries(result_index_)
};

/// Checks |D| <= L and validity for a whole DFS assignment.
bool AllValid(const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
              int size_bound);

}  // namespace xsact::core

#endif  // XSACT_CORE_DFS_H_
