#include "core/selector.h"

#include "common/macros.h"
#include "core/exhaustive.h"
#include "core/greedy_selector.h"
#include "core/multi_swap.h"
#include "core/single_swap.h"
#include "core/snippet_selector.h"

namespace xsact::core {

std::string_view SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kSnippet:
      return "snippet";
    case SelectorKind::kGreedy:
      return "greedy";
    case SelectorKind::kSingleSwap:
      return "single-swap";
    case SelectorKind::kMultiSwap:
      return "multi-swap";
    case SelectorKind::kExhaustive:
      return "exhaustive";
    case SelectorKind::kWeightedMultiSwap:
      return "weighted-multi-swap";
  }
  return "unknown";
}

std::unique_ptr<DfsSelector> MakeSelector(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kSnippet:
      return std::make_unique<SnippetSelector>();
    case SelectorKind::kGreedy:
      return std::make_unique<GreedySelector>();
    case SelectorKind::kSingleSwap:
      return std::make_unique<SingleSwapOptimizer>();
    case SelectorKind::kMultiSwap:
      return std::make_unique<MultiSwapOptimizer>();
    case SelectorKind::kExhaustive:
      return std::make_unique<ExhaustiveSelector>();
    case SelectorKind::kWeightedMultiSwap:
      return std::make_unique<WeightedMultiSwapOptimizer>();
  }
  XSACT_CHECK_MSG(false, "unknown selector kind");
  return nullptr;
}

const DfsSelector& SelectorSet::Get(SelectorKind kind) {
  const size_t slot = static_cast<size_t>(kind);
  XSACT_CHECK(slot < kNumSelectorKinds);
  if (selectors_[slot] == nullptr) selectors_[slot] = MakeSelector(kind);
  return *selectors_[slot];
}

void FillToBound(const ComparisonInstance& instance, int size_bound,
                 std::vector<Dfs>* dfss) {
  for (int i = 0; i < instance.num_results(); ++i) {
    Dfs& dfs = (*dfss)[static_cast<size_t>(i)];
    const auto& entries = instance.entries(i);
    while (dfs.size() < size_bound &&
           dfs.size() < static_cast<int>(entries.size())) {
      // The next addable entry of each group is its first unselected one
      // (groups are sorted by significance); pick the globally most
      // significant frontier by relative occurrence.
      int best = -1;
      for (const EntityGroup& group : instance.groups(i)) {
        for (int k = group.begin; k < group.end; ++k) {
          if (dfs.Contains(k)) continue;
          if (best < 0 ||
              entries[static_cast<size_t>(k)].RelOccurrence() >
                  entries[static_cast<size_t>(best)].RelOccurrence()) {
            best = k;
          }
          break;
        }
      }
      if (best < 0) break;
      dfs.Add(best);
    }
  }
}

}  // namespace xsact::core
