#include "core/snippet_selector.h"

namespace xsact::core {

std::vector<Dfs> SnippetSelector::Select(const ComparisonInstance& instance,
                                         const SelectorOptions& options) const {
  std::vector<Dfs> dfss;
  dfss.reserve(static_cast<size_t>(instance.num_results()));
  for (int i = 0; i < instance.num_results(); ++i) {
    Dfs dfs(instance, i);
    const auto& entries = instance.entries(i);
    // Repeatedly add the highest-relative-occurrence entry that keeps the
    // selection valid. Within an entity group relative and absolute
    // occurrence order coincide (same cardinality), so the next addable
    // entry of a group is always the first unselected one.
    while (dfs.size() < options.size_bound &&
           dfs.size() < static_cast<int>(entries.size())) {
      int best = -1;
      for (const EntityGroup& group : instance.groups(i)) {
        for (int k = group.begin; k < group.end; ++k) {
          if (dfs.Contains(k)) continue;
          // First unselected entry of the group is its frontier.
          if (best < 0 ||
              entries[static_cast<size_t>(k)].RelOccurrence() >
                  entries[static_cast<size_t>(best)].RelOccurrence()) {
            best = k;
          }
          break;
        }
      }
      if (best < 0) break;
      dfs.Add(best);
    }
    dfss.push_back(std::move(dfs));
  }
  return dfss;
}

}  // namespace xsact::core
