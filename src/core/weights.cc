#include "core/weights.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace xsact::core {

std::string_view WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kUniform:
      return "uniform";
    case WeightScheme::kInterestingness:
      return "interestingness";
    case WeightScheme::kSignificance:
      return "significance";
  }
  return "unknown";
}

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Normalized Shannon entropy of a histogram (0 when <= 1 bucket).
double NormalizedEntropy(const std::map<feature::ValueId, int>& histogram,
                         int total) {
  if (histogram.size() <= 1 || total <= 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : histogram) {
    (void)value;
    const double p = static_cast<double>(count) / total;
    if (p > 0) h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(histogram.size()));
}

/// Interestingness of one type: how much its presentation varies across
/// the results that carry it.
double Interestingness(const ComparisonInstance& instance,
                       feature::TypeId type) {
  std::map<feature::ValueId, int> dominant_values;
  double min_rel = 1.0;
  double max_rel = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const feature::TypeStats* stats = instance.result(i).Find(type);
    if (stats == nullptr) continue;
    ++carriers;
    const feature::ValueId v = stats->DominantValue();
    ++dominant_values[v];
    const double rel = stats->RelativeOccurrenceOf(v);
    min_rel = std::min(min_rel, rel);
    max_rel = std::max(max_rel, rel);
  }
  if (carriers <= 1) return 0.0;  // nothing to contrast
  const double value_diversity = NormalizedEntropy(dominant_values, carriers);
  const double share_spread = Clamp01(max_rel - min_rel);
  return std::max(value_diversity, share_spread);
}

/// Mean relative occurrence across carriers.
double Significance(const ComparisonInstance& instance,
                    feature::TypeId type) {
  double sum = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const feature::TypeStats* stats = instance.result(i).Find(type);
    if (stats == nullptr) continue;
    ++carriers;
    sum += Clamp01(stats->RelativeOccurrence());
  }
  return carriers > 0 ? sum / carriers : 0.0;
}

}  // namespace

TypeWeights TypeWeights::Compute(const ComparisonInstance& instance,
                                 WeightScheme scheme) {
  TypeWeights weights;
  for (int i = 0; i < instance.num_results(); ++i) {
    for (const Entry& e : instance.entries(i)) {
      if (weights.weights_.count(e.type_id) > 0) continue;
      double w = 1.0;
      switch (scheme) {
        case WeightScheme::kUniform:
          w = 1.0;
          break;
        case WeightScheme::kInterestingness:
          w = kFloor + (1.0 - kFloor) * Interestingness(instance, e.type_id);
          break;
        case WeightScheme::kSignificance:
          w = kFloor + (1.0 - kFloor) * Significance(instance, e.type_id);
          break;
      }
      weights.weights_.emplace(e.type_id, w);
    }
  }
  return weights;
}

TypeWeights TypeWeights::Uniform() { return TypeWeights(); }

void TypeWeights::Set(feature::TypeId type, double weight) {
  weights_[type] = std::min(1.0, std::max(kFloor, weight));
}

}  // namespace xsact::core
