#include "core/weights.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace xsact::core {

std::string_view WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kUniform:
      return "uniform";
    case WeightScheme::kInterestingness:
      return "interestingness";
    case WeightScheme::kSignificance:
      return "significance";
  }
  return "unknown";
}

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Normalized Shannon entropy of a histogram (0 when <= 1 bucket). The
/// histogram is sorted by value id, so the summation order matches the
/// std::map-based scalar implementation bit for bit.
double NormalizedEntropy(
    const std::vector<std::pair<feature::ValueId, int>>& histogram,
    int total) {
  if (histogram.size() <= 1 || total <= 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : histogram) {
    (void)value;
    const double p = static_cast<double>(count) / total;
    if (p > 0) h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(histogram.size()));
}

/// Interestingness of one dense type: how much its presentation varies
/// across the results that carry it. One flat-table sweep per type.
double Interestingness(const ComparisonInstance& instance, int dense_type,
                       std::vector<std::pair<feature::ValueId, int>>* scratch) {
  scratch->clear();
  double min_rel = 1.0;
  double max_rel = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const int entry_index = instance.EntryIndexOfDenseType(i, dense_type);
    if (entry_index < 0) continue;
    const Entry& e = instance.entries(i)[static_cast<size_t>(entry_index)];
    ++carriers;
    bool found = false;
    for (auto& [value, count] : *scratch) {
      if (value == e.dominant_value) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) scratch->emplace_back(e.dominant_value, 1);
    const double rel = e.DominantRelOccurrence();
    min_rel = std::min(min_rel, rel);
    max_rel = std::max(max_rel, rel);
  }
  if (carriers <= 1) return 0.0;  // nothing to contrast
  std::sort(scratch->begin(), scratch->end());
  const double value_diversity = NormalizedEntropy(*scratch, carriers);
  const double share_spread = Clamp01(max_rel - min_rel);
  return std::max(value_diversity, share_spread);
}

/// Mean relative occurrence across carriers.
double Significance(const ComparisonInstance& instance, int dense_type) {
  double sum = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const int entry_index = instance.EntryIndexOfDenseType(i, dense_type);
    if (entry_index < 0) continue;
    const Entry& e = instance.entries(i)[static_cast<size_t>(entry_index)];
    ++carriers;
    sum += Clamp01(e.RelOccurrence());
  }
  return carriers > 0 ? sum / carriers : 0.0;
}

}  // namespace

TypeWeights TypeWeights::Compute(const ComparisonInstance& instance,
                                 WeightScheme scheme) {
  TypeWeights weights;
  // One pass over the dense type index — every type occurring anywhere
  // gets its weight exactly once; no per-entry "seen before?" probes.
  const DiffMatrix& matrix = instance.diff_matrix();
  if (matrix.num_types() > 0) {
    weights.by_type_.assign(
        static_cast<size_t>(matrix.types().back()) + 1, 1.0);
    weights.is_set_.assign(weights.by_type_.size(), false);
  }
  std::vector<std::pair<feature::ValueId, int>> histogram;
  for (int t = 0; t < matrix.num_types(); ++t) {
    double w = 1.0;
    switch (scheme) {
      case WeightScheme::kUniform:
        w = 1.0;
        break;
      case WeightScheme::kInterestingness:
        w = kFloor + (1.0 - kFloor) * Interestingness(instance, t, &histogram);
        break;
      case WeightScheme::kSignificance:
        w = kFloor + (1.0 - kFloor) * Significance(instance, t);
        break;
    }
    weights.by_type_[static_cast<size_t>(matrix.TypeAt(t))] = w;
    weights.is_set_[static_cast<size_t>(matrix.TypeAt(t))] = true;
    ++weights.num_set_;
  }
  return weights;
}

TypeWeights TypeWeights::Uniform() { return TypeWeights(); }

void TypeWeights::Set(feature::TypeId type, double weight) {
  if (type < 0) return;
  if (static_cast<size_t>(type) >= by_type_.size()) {
    by_type_.resize(static_cast<size_t>(type) + 1, 1.0);
    is_set_.resize(static_cast<size_t>(type) + 1, false);
  }
  if (!is_set_[static_cast<size_t>(type)]) {
    is_set_[static_cast<size_t>(type)] = true;
    ++num_set_;
  }
  by_type_[static_cast<size_t>(type)] =
      std::min(1.0, std::max(kFloor, weight));
}

}  // namespace xsact::core
