// SelectionState: incrementally-maintained per-type selection masks over
// a DFS assignment, the gain substrate of the swap optimizers.
//
// For every dense type t it maintains selected_mask(t) = the word-packed
// set of results whose CURRENT DFS selects t. With the instance's
// DiffMatrix this turns the core quantities into popcounts:
//
//   TypeGain(i, t) = popcount(diff_row(t, i) & selected_mask(t))
//                    (the diff row's diagonal bit is always clear, so no
//                     self-pair correction is needed)
//   TotalDod       = 1/2 * sum over t, i in selected_mask(t) of
//                    popcount(diff_row(t, i) & selected_mask(t))
//
// Every mutation bumps the affected type's version counter; optimizers
// cache per-entry gains keyed by these versions and only refresh entries
// whose type's mask changed since the last visit.
//
// The state can wrap an assignment in two modes:
//   * mutable  — constructed with a std::vector<Dfs>*; Add/Remove/Assign
//     keep the DFSs and the masks in lockstep.
//   * read-only — constructed with a const std::vector<Dfs>&; only the
//     query API is usable (mutations CHECK-fail).

#ifndef XSACT_CORE_SELECTION_STATE_H_
#define XSACT_CORE_SELECTION_STATE_H_

#include <cstdint>
#include <vector>

#include "core/dfs.h"
#include "core/instance.h"
#include "core/weights.h"

namespace xsact::core {

class SelectionState {
 public:
  /// Mutable mode: the state owns mutation of `*dfss` from now on; all
  /// changes to the assignment must go through Add/Remove/Assign.
  SelectionState(const ComparisonInstance& instance, std::vector<Dfs>* dfss);

  /// Read-only mode over a frozen assignment.
  SelectionState(const ComparisonInstance& instance,
                 const std::vector<Dfs>& dfss);

  const ComparisonInstance& instance() const { return *instance_; }
  const std::vector<Dfs>& dfss() const { return *dfss_; }

  /// Selects entry `entry_index` in D_i (no-op when already selected).
  void Add(int i, int entry_index);

  /// Deselects entry `entry_index` from D_i (no-op when not selected).
  void Remove(int i, int entry_index);

  /// Replaces D_i wholesale, updating masks for the symmetric difference.
  void Assign(int i, const Dfs& replacement);

  /// Word-packed mask of results whose current DFS selects dense type t.
  const uint64_t* SelectedMask(int dense_type) const {
    return selected_.data() + static_cast<size_t>(dense_type) *
                                  static_cast<size_t>(words_);
  }

  /// Monotone change counter of a type's selected mask (for gain caches).
  uint32_t Version(int dense_type) const {
    return versions_[static_cast<size_t>(dense_type)];
  }

  /// Marginal gain of dense type t at result i against the current
  /// assignment: partners selecting t and differentiable from i on t.
  int TypeGain(int i, int dense_type) const {
    return bits::PopcountAnd(instance_->diff_matrix().Row(dense_type, i),
                             SelectedMask(dense_type), words_);
  }

  double WeightedTypeGain(int i, int dense_type,
                          const TypeWeights& weights) const {
    return TypeGain(i, dense_type) *
           weights.Of(instance_->diff_matrix().TypeAt(dense_type));
  }

  /// Total DoD of the current assignment as a popcount sweep.
  int64_t TotalDod() const;

  /// Weighted total DoD (uniform weights agree with TotalDod exactly).
  double WeightedTotalDod(const TypeWeights& weights) const;

 private:
  SelectionState(const ComparisonInstance& instance,
                 const std::vector<Dfs>* dfss, std::vector<Dfs>* mutable_dfss);

  /// Flips result i's membership in the type's mask.
  void SetMaskBit(int dense_type, int i);
  void ClearMaskBit(int dense_type, int i);

  const ComparisonInstance* instance_ = nullptr;
  const std::vector<Dfs>* dfss_ = nullptr;
  std::vector<Dfs>* mutable_dfss_ = nullptr;  // null in read-only mode
  int words_ = 0;                             // words per result mask
  std::vector<uint64_t> selected_;            // [dense_type][word]
  std::vector<uint32_t> versions_;            // starts at 1 per type
};

}  // namespace xsact::core

#endif  // XSACT_CORE_SELECTION_STATE_H_
