#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/status.h"

namespace xsact::server {

namespace {

/// RFC 7230 token characters (header names, methods).
bool IsTokenChar(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (!IsTokenChar(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimOws(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool ContainsCtl(std::string_view text) {
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && u != '\t') return true;
    if (u == 0x7f) return true;
  }
  return false;
}

/// Calls `fn(element)` for each comma-separated element, OWS-trimmed.
template <typename Fn>
void ForEachListElement(std::string_view value, const Fn& fn) {
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string_view::npos) comma = value.size();
    fn(TrimOws(value.substr(start, comma - start)));
    start = comma + 1;
  }
}

int HexDigit(unsigned char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::Reset() {
  state_ = State::kStart;
  started_ = false;
  error_code_ = 0;
  error_detail_.clear();
  request_ = HttpRequest();
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  chunk_total_ = 0;
}

size_t HttpParser::FailWith(int code, std::string detail) {
  state_ = State::kError;
  error_code_ = code;
  error_detail_ = std::move(detail);
  return 0;
}

size_t HttpParser::Feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::kDone &&
         state_ != State::kError) {
    const std::string_view rest = data.substr(consumed);

    // Bulk states first: body bytes are copied, not line-scanned.
    if (state_ == State::kBody || state_ == State::kChunkData) {
      const size_t take = std::min(rest.size(), body_remaining_);
      request_.body.append(rest.data(), take);
      body_remaining_ -= take;
      consumed += take;
      if (body_remaining_ == 0) {
        if (state_ == State::kBody) {
          state_ = State::kDone;
        } else {
          state_ = State::kChunkDataEnd;
        }
      }
      continue;
    }

    // Line-based states: accumulate until '\n' (CRLF or bare LF).
    const size_t newline = rest.find('\n');
    const size_t take =
        newline == std::string_view::npos ? rest.size() : newline + 1;

    // The per-state cap bounds the accumulator BEFORE appending, so a
    // newline-free garbage stream fails fast instead of buffering.
    size_t cap = 0;
    int over_cap_code = 400;
    switch (state_) {
      case State::kStart:
      case State::kRequestLine:
        cap = limits_.max_request_line;
        over_cap_code = 431;
        break;
      case State::kHeaders:
      case State::kTrailers:
        cap = limits_.max_header_bytes;
        over_cap_code = 431;
        break;
      case State::kChunkSize:
        cap = 128;  // hex size + extensions; anything longer is garbage
        over_cap_code = 400;
        break;
      case State::kChunkDataEnd:
        cap = 2;  // exactly CRLF (or LF)
        over_cap_code = 400;
        break;
      default:
        cap = limits_.max_request_line;
        break;
    }
    if (state_ == State::kHeaders || state_ == State::kTrailers) {
      if (header_bytes_ + line_.size() + take > cap) {
        return FailWith(over_cap_code, "header block exceeds " +
                                           std::to_string(cap) + " bytes");
      }
    } else if (line_.size() + take > cap) {
      return FailWith(over_cap_code,
                      "line exceeds " + std::to_string(cap) + " bytes");
    }

    line_.append(rest.data(), take);
    consumed += take;
    started_ = true;
    if (newline == std::string_view::npos) break;  // need more bytes

    // Full line available: strip the terminator.
    std::string_view line(line_);
    line.remove_suffix(1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    switch (state_) {
      case State::kStart:
        if (line.empty()) break;  // tolerated blank line before request
        state_ = State::kRequestLine;
        [[fallthrough]];
      case State::kRequestLine:
        if (!ParseRequestLine(line)) return consumed;
        state_ = State::kHeaders;
        break;
      case State::kHeaders:
        header_bytes_ += line_.size();
        if (!ParseHeaderLine(line)) return consumed;
        break;
      case State::kChunkSize: {
        // chunk-size [;extensions]
        std::string_view size_part = line.substr(0, line.find(';'));
        size_part = TrimOws(size_part);
        if (size_part.empty() || size_part.size() > 16 ||
            ContainsCtl(line)) {
          FailWith(400, "invalid chunk size line");
          return consumed;
        }
        size_t value = 0;
        for (const char c : size_part) {
          const int digit = HexDigit(static_cast<unsigned char>(c));
          if (digit < 0) {
            FailWith(400, "invalid chunk size digit");
            return consumed;
          }
          value = value * 16 + static_cast<size_t>(digit);
        }
        // Checked without addition: a 16-hex-digit chunk size can be up
        // to 2^64-1, so `chunk_total_ + value` may wrap past the limit.
        if (value > limits_.max_body_bytes ||
            chunk_total_ > limits_.max_body_bytes - value) {
          FailWith(413, "chunked body exceeds " +
                            std::to_string(limits_.max_body_bytes) +
                            " bytes");
          return consumed;
        }
        chunk_total_ += value;
        if (value == 0) {
          state_ = State::kTrailers;
        } else {
          body_remaining_ = value;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkDataEnd:
        if (!line.empty()) {
          FailWith(400, "missing CRLF after chunk data");
          return consumed;
        }
        state_ = State::kChunkSize;
        break;
      case State::kTrailers:
        header_bytes_ += line_.size();
        if (line.empty()) {
          state_ = State::kDone;
        } else if (ContainsCtl(line) ||
                   line.find(':') == std::string_view::npos) {
          FailWith(400, "malformed trailer field");
          return consumed;
        }
        // Valid trailer fields are discarded.
        break;
      default:
        break;
    }
    line_.clear();
  }
  return consumed;
}

bool HttpParser::ParseRequestLine(std::string_view line) {
  if (ContainsCtl(line)) {
    FailWith(400, "control bytes in request line");
    return false;
  }
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    FailWith(400, "request line is not 'METHOD TARGET VERSION'");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method) || method.size() > 24) {
    FailWith(400, "invalid method token");
    return false;
  }
  if (target.empty() || !(target.front() == '/' || target == "*")) {
    FailWith(400, "invalid request target");
    return false;
  }
  if (version.size() != 8 || version.substr(0, 5) != "HTTP/" ||
      version[6] != '.' || !std::isdigit(static_cast<unsigned char>(version[5])) ||
      !std::isdigit(static_cast<unsigned char>(version[7]))) {
    FailWith(400, "malformed HTTP version");
    return false;
  }
  if (version[5] != '1' || (version[7] != '0' && version[7] != '1')) {
    FailWith(505, "only HTTP/1.0 and HTTP/1.1 are served");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version_minor = version[7] - '0';
  return true;
}

bool HttpParser::ParseHeaderLine(std::string_view line) {
  if (line.empty()) return FinishHeaders();
  if (ContainsCtl(line)) {
    FailWith(400, "control bytes in header field");
    return false;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    // Deprecated obs-fold continuation; rejecting it is the RFC 7230
    // recommendation for servers.
    FailWith(400, "folded header lines are not accepted");
    return false;
  }
  if (request_.headers.size() >= limits_.max_headers) {
    FailWith(431, "more than " + std::to_string(limits_.max_headers) +
                      " header fields");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    FailWith(400, "header field without ':'");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Covers empty names and whitespace before the colon (request
    // smuggling vector).
    FailWith(400, "invalid header field name");
    return false;
  }
  request_.headers.emplace_back(ToLower(name),
                                std::string(TrimOws(line.substr(colon + 1))));
  return true;
}

bool HttpParser::FinishHeaders() {
  // Resolve body framing. Transfer-Encoding beats Content-Length per
  // RFC 7230, but a request carrying BOTH is a classic smuggling probe:
  // reject it outright.
  bool chunked = false;
  bool has_te = false;
  const std::string* content_length = nullptr;
  for (const auto& [name, value] : request_.headers) {
    if (name == "transfer-encoding") {
      has_te = true;
      if (EqualsIgnoreCase(TrimOws(value), "chunked")) {
        chunked = true;
      } else {
        FailWith(501, "unsupported transfer encoding '" + value + "'");
        return false;
      }
    } else if (name == "content-length") {
      if (content_length != nullptr && *content_length != value) {
        FailWith(400, "conflicting Content-Length headers");
        return false;
      }
      content_length = &value;
    }
  }
  if (has_te && content_length != nullptr) {
    FailWith(400, "both Transfer-Encoding and Content-Length present");
    return false;
  }

  size_t body_size = 0;
  if (content_length != nullptr) {
    const std::string& text = *content_length;
    if (text.empty() || text.size() > 19 ||
        text.find_first_not_of("0123456789") != std::string::npos) {
      FailWith(400, "malformed Content-Length '" + text + "'");
      return false;
    }
    for (const char c : text) body_size = body_size * 10 + (c - '0');
    if (body_size > limits_.max_body_bytes) {
      FailWith(413, "declared body of " + text + " bytes exceeds " +
                        std::to_string(limits_.max_body_bytes));
      return false;
    }
  }

  // Keep-alive: HTTP/1.1 defaults on, 1.0 off; Connection overrides.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* connection = request_.FindHeader("connection")) {
    ForEachListElement(*connection, [this](std::string_view element) {
      if (EqualsIgnoreCase(element, "close")) {
        request_.keep_alive = false;
      } else if (EqualsIgnoreCase(element, "keep-alive")) {
        request_.keep_alive = true;
      }
    });
  }

  if (chunked) {
    state_ = State::kChunkSize;
  } else if (body_size > 0) {
    body_remaining_ = body_size;
    request_.body.reserve(body_size);
    state_ = State::kBody;
  } else {
    state_ = State::kDone;
  }
  return true;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.code);
  out += ' ';
  out += HttpReasonPhrase(response.code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += (keep_alive && !response.close) ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query) {
  const size_t question = target.find('?');
  if (question == std::string_view::npos) {
    *path = target;
    *query = std::string_view();
  } else {
    *path = target.substr(0, question);
    *query = target.substr(question + 1);
  }
}

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out->push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = HexDigit(static_cast<unsigned char>(in[i + 1]));
      const int lo = HexDigit(static_cast<unsigned char>(in[i + 2]));
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out->push_back(c);
    }
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(start, amp - start);
    start = amp + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    const std::string_view raw_name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    const std::string_view raw_value =
        eq == std::string_view::npos ? std::string_view()
                                     : pair.substr(eq + 1);
    std::string name;
    std::string value;
    if (PercentDecode(raw_name, &name) && PercentDecode(raw_value, &value)) {
      params.emplace_back(std::move(name), std::move(value));
    }
  }
  return params;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace xsact::server
