// HttpServer: the hardened network front-end of the XSACT serving stack.
//
// One poll()-driven event-loop thread serves HTTP/1.1 (keep-alive,
// pipelining-tolerant) in front of an engine::ServiceRouter. The design
// goal is robustness under hostile or failing clients, in layers:
//
//   * Bounded everything: connection count (accept beyond the cap is
//     answered 503 and closed), per-request parser allocations
//     (HttpParserLimits — oversized requests get 413/431), per-connection
//     output buffering.
//   * Timeouts: a connection mid-request that stops sending bytes is a
//     slow-loris — answered 408 and closed after read_timeout_ms; an
//     idle keep-alive connection is silently closed after
//     idle_timeout_ms; a peer that stops reading its response is closed
//     after write_timeout_ms.
//   * Malformed input: the incremental parser turns any garbage into a
//     clean 4xx/5xx + close; random bytes can never reach the engine.
//   * Backpressure: admission control stays in QueryService (bounded
//     queue + deadlines); the server maps the resulting Status onto
//     HTTP via common/status.h — kResourceExhausted → 429 + Retry-After,
//     kDeadlineExceeded → 504, kCancelled → 499, corruption/internal →
//     500 — so clients see intent, not stack traces.
//   * Client-disconnect detection: a peer that hangs up while its query
//     is queued or evaluating fires the request's CancelSource, so the
//     engine abandons the work instead of computing for nobody.
//   * Graceful drain: Stop() (or readability of options.wakeup_fd — wire
//     it to common/shutdown_signal.h for SIGTERM/SIGINT) closes the
//     listener, lets in-flight requests finish within drain_budget_ms,
//     then hard-cancels the engine via QueryService::Shutdown() and
//     resolves every remaining connection before Run() returns.
//
// Endpoints (full contract in docs/serving.md):
//   GET /query?dataset=D&q=Q[&max_results=N][&timeout_ms=T][&lift=TAG]
//       200 with the comparison table as JSON — byte-identical to
//       table::RenderJson on the direct router path (gated by
//       bench_server_serve) — or a mapped error JSON.
//   GET /healthz   200 {"status":"ok"} serving; 503 draining/unhealthy.
//   GET /statz     RouterStats + ServerStats as JSON.
//
// Threading: Start() may be called from any thread; Run() occupies the
// calling thread until drain completes; Stop() and stats() are safe from
// any thread. All connection state is owned by the Run() thread.

#ifndef XSACT_SERVER_SERVER_H_
#define XSACT_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "engine/query_service.h"
#include "engine/router.h"
#include "server/http.h"

namespace xsact::server {

/// Tuning knobs. The defaults serve a trusted LAN; the timeouts are the
/// knobs to tighten on an exposed port.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read it via port()).
  int port = 0;
  int backlog = 128;
  /// Accepted connections beyond this are answered 503 and closed.
  size_t max_connections = 256;
  /// Mid-request silence budget (slow-loris): 408 + close beyond it.
  int read_timeout_ms = 5000;
  /// Idle keep-alive budget: silent close beyond it.
  int idle_timeout_ms = 30000;
  /// Stalled-response budget (peer stops reading): close beyond it.
  int write_timeout_ms = 5000;
  /// Graceful-drain budget: in-flight work past it is hard-cancelled
  /// (QueryService::Shutdown + per-request CancelSource).
  int drain_budget_ms = 2000;
  /// Per-request engine deadline when the client sends no timeout_ms
  /// parameter. 0 = no deadline.
  int default_deadline_ms = 0;
  /// Request parser caps (line/header/body sizes).
  HttpParserLimits parser_limits;
  /// External wakeup fd (e.g. common/shutdown_signal.h's
  /// ShutdownWakeupFd()): readability triggers the same graceful drain
  /// as Stop(). -1 = none.
  int wakeup_fd = -1;
};

/// Monotonic counters since Start(). Exposed via /statz.
struct ServerStats {
  uint64_t accepted = 0;         ///< connections accepted
  uint64_t rejected_at_capacity = 0;  ///< 503'd at max_connections
  uint64_t requests = 0;         ///< complete requests parsed
  uint64_t responses_ok = 0;     ///< 2xx responses queued
  uint64_t responses_error = 0;  ///< 4xx/5xx responses queued
  uint64_t parse_errors = 0;     ///< malformed requests (subset of above)
  uint64_t timeouts = 0;         ///< read/idle/write timeout closes
  uint64_t disconnects = 0;      ///< peers gone mid-request/mid-response
  uint64_t cancelled_by_disconnect = 0;  ///< engine work abandoned
};

/// See file comment. Not copyable/movable (connections hold pointers
/// back into the server).
class HttpServer {
 public:
  /// `router` must outlive the server and is shared with other callers
  /// (the server adds no locking of its own around it — the router is
  /// thread-safe).
  explicit HttpServer(engine::ServiceRouter* router,
                      ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens on 127.0.0.1:options.port. After ok, port() holds
  /// the bound port (useful with port = 0).
  Status Start();

  /// Bound port; 0 before Start().
  int port() const { return port_; }

  /// Serves until a drain completes (triggered by Stop(), wakeup_fd
  /// readability, or a fatal listener error). Blocks the calling thread.
  /// The XSACT_EVENT_LOOP_THREAD marker (here and on the private
  /// handlers below) feeds tools/lint/run_lint.py: the bodies of marked
  /// functions must not block — no sleeps, no file IO, no unbounded
  /// future waits — because one stalled callback stalls every
  /// connection this loop serves.
  XSACT_EVENT_LOOP_THREAD void Run();

  /// Requests a graceful drain (thread-safe, idempotent, returns
  /// immediately). Run() returns once the drain finishes.
  void Stop();

  /// True from the moment a drain is requested.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Counter snapshot (thread-safe).
  ServerStats stats() const;

 private:
  struct Connection;

  XSACT_EVENT_LOOP_THREAD void AcceptPending();
  /// Reads whatever the socket has; feeds the parser; may queue a
  /// response. False = connection must be destroyed.
  XSACT_EVENT_LOOP_THREAD bool HandleReadable(Connection* conn);
  /// Flushes pending output. False = connection must be destroyed.
  XSACT_EVENT_LOOP_THREAD bool HandleWritable(Connection* conn);
  /// Feeds buffered input through the parser, dispatching each complete
  /// request, until it needs more bytes, fails, or parks on the engine.
  XSACT_EVENT_LOOP_THREAD void ParseBuffered(Connection* conn);
  /// Routes one parsed request; either queues a response or parks the
  /// connection on an engine future.
  XSACT_EVENT_LOOP_THREAD void DispatchRequest(Connection* conn);
  /// Resolves a ready engine future into a response.
  XSACT_EVENT_LOOP_THREAD void FinishQuery(Connection* conn);
  XSACT_EVENT_LOOP_THREAD void QueueResponse(Connection* conn,
                                             HttpResponse response);
  XSACT_EVENT_LOOP_THREAD void CloseConnection(
      std::unique_ptr<Connection> conn);
  /// Applies read/idle/write timeouts; true = connection survived.
  XSACT_EVENT_LOOP_THREAD bool CheckTimeouts(
      Connection* conn, std::chrono::steady_clock::time_point now);
  XSACT_EVENT_LOOP_THREAD void BeginDrain();
  /// Hard phase: cancel engine work, then resolve stragglers.
  XSACT_EVENT_LOOP_THREAD void ForceDrain();

  XSACT_EVENT_LOOP_THREAD std::string HandleHealthz() const;
  XSACT_EVENT_LOOP_THREAD std::string HandleStatz() const;

  engine::ServiceRouter* router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  /// Self-pipe waking poll() from Stop().
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};
  bool listener_open_ = false;

  std::vector<std::unique_ptr<Connection>> connections_;
  /// Disconnected peers whose engine future (and the CancelSource it
  /// may dereference) is not ready yet — kept alive until it is.
  std::vector<std::unique_ptr<Connection>> zombies_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_at_capacity_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_error_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> disconnects_{0};
  std::atomic<uint64_t> cancelled_by_disconnect_{0};
};

/// Serializes RouterStats (per-dataset cache/admission/health counters
/// plus totals) as a JSON object — the /statz "datasets"/"totals"
/// payload, also reusable by tooling.
std::string RouterStatsJson(const engine::RouterStats& stats);

}  // namespace xsact::server

#endif  // XSACT_SERVER_SERVER_H_
