// HTTP/1.1 request parsing and response serialization for the XSACT
// network front-end.
//
// The parser is built failure-first: it is an INCREMENTAL state machine
// (feed whatever bytes arrived, in any split) whose every allocation is
// bounded by HttpParserLimits, and whose reaction to any malformed,
// truncated, oversized, or garbage input is a clean error with a
// suggested 4xx/5xx response code — never UB, unbounded buffering, or
// an exception. Slow-loris, random byte streams, and invalid chunked
// framing all land in the same place: failed() plus an error code the
// server turns into a response before closing the connection.
//
// Supported surface (documented in docs/serving.md): HTTP/1.0 and 1.1
// request lines, header fields (obs-fold rejected), fixed
// Content-Length bodies, and chunked transfer encoding with trailers
// (discarded). Anything else degrades to a specific status: unsupported
// transfer codings → 501, unsupported versions → 505, size-limit
// violations → 413/431, everything malformed → 400.

#ifndef XSACT_SERVER_HTTP_H_
#define XSACT_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xsact::server {

/// Hard caps on what one request may make the parser buffer. Every
/// internal allocation is bounded by these, so a malicious stream costs
/// at most max_request_line + max_header_bytes + max_body_bytes.
struct HttpParserLimits {
  size_t max_request_line = 4096;   ///< request line, bytes (431 beyond)
  size_t max_header_bytes = 16384;  ///< whole header block (431 beyond)
  size_t max_headers = 100;         ///< field count (431 beyond)
  size_t max_body_bytes = 1 << 20;  ///< fixed or de-chunked body (413)
};

/// One parsed request. Header names are lowercased at parse time;
/// values keep their bytes with outer whitespace trimmed.
struct HttpRequest {
  std::string method;  ///< verbatim (token-validated), e.g. "GET"
  std::string target;  ///< raw request-target, e.g. "/query?q=gps"
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 parse
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  ///< fixed-length or de-chunked payload
  /// Persistent-connection semantics: HTTP/1.1 default-on, HTTP/1.0
  /// default-off, both overridable by a Connection header.
  bool keep_alive = true;

  /// First header named `name` (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Incremental request parser. Lifecycle per request:
///   while (!done() && !failed()) consumed = Feed(bytes);
/// Feed returns how many input bytes it consumed; on done() the
/// remainder is the start of the next pipelined request (keep it and
/// call Reset() before feeding again). failed() is terminal until
/// Reset(): the connection should be answered with error_code() and
/// closed, since request framing is no longer trustworthy.
class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {});

  /// Consumes as much of `data` as the current state allows. Returns
  /// the number of bytes consumed (always == data.size() unless the
  /// request completed or failed mid-buffer).
  size_t Feed(std::string_view data);

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }

  /// True once any byte of the current request has been consumed —
  /// distinguishes an idle keep-alive connection from one mid-request
  /// (a timeout on the former closes silently; on the latter it's 408).
  bool started() const { return started_; }

  /// HTTP response code describing the failure (400/413/431/501/505).
  int error_code() const { return error_code_; }
  const std::string& error_detail() const { return error_detail_; }

  /// Valid when done().
  const HttpRequest& request() const { return request_; }

  /// Ready for the next request (keep-alive reuse). Limits persist.
  void Reset();

 private:
  enum class State {
    kStart,        // may skip blank line(s) before the request line
    kRequestLine,
    kHeaders,
    kBody,         // fixed Content-Length
    kChunkSize,    // hex size line
    kChunkData,    // chunk payload
    kChunkDataEnd, // CRLF after chunk payload
    kTrailers,     // trailer fields after the last chunk
    kDone,
    kError,
  };

  /// Transitions to kError; always returns 0 so Feed can tail-return.
  size_t FailWith(int code, std::string detail);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  /// On the blank line ending the headers: resolves framing (fixed /
  /// chunked / none) and keep-alive. Returns false on failure.
  bool FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kStart;
  bool started_ = false;
  int error_code_ = 0;
  std::string error_detail_;
  HttpRequest request_;
  std::string line_;        ///< current line accumulator (bounded)
  size_t header_bytes_ = 0; ///< header block bytes consumed so far
  size_t body_remaining_ = 0;
  size_t chunk_total_ = 0;  ///< de-chunked bytes so far (bounded)
};

/// One response to serialize. `close` forces "Connection: close"
/// regardless of the request's keep-alive preference.
struct HttpResponse {
  int code = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  bool close = false;
};

/// Serializes status line + headers + body. `keep_alive` reflects the
/// request's preference; the response carries an explicit Connection
/// header either way so clients never guess.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Splits a request-target into path and query string (no decoding).
void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query);

/// Percent-decodes `in` ('+' becomes space — query-string convention).
/// False on truncated/invalid escapes; *out is then unspecified.
bool PercentDecode(std::string_view in, std::string* out);

/// Parses "a=1&b=two" into decoded (name, value) pairs, in order.
/// Pairs with undecodable names/values are dropped (garbage-tolerant).
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query);

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(std::string_view text);

}  // namespace xsact::server

#endif  // XSACT_SERVER_HTTP_H_
