#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/errno_util.h"

namespace xsact::server {

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimOws(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* ClientResponse::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpClient::HttpClient(int port, int recv_timeout_ms)
    : port_(port), recv_timeout_ms_(recv_timeout_ms) {}

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::Ok();
  buffer_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + ErrnoString(errno));
  }
  struct timeval timeout;
  timeout.tv_sec = recv_timeout_ms_ / 1000;
  timeout.tv_usec = (recv_timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect(127.0.0.1:" + std::to_string(port_) +
                           "): " + ErrnoString(err));
  }
  fd_ = fd;
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::SendRaw(std::string_view bytes) {
  Status status = Connect();
  if (!status.ok()) return status;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = ErrnoString(errno);
      Close();
      return Status::IoError("send(): " + detail);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<ClientResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::IoError("not connected");

  // Accumulate until the blank line ending the headers.
  size_t header_end = std::string::npos;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = ErrnoString(errno);
      Close();
      return Status::IoError("recv(): " + detail);
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed before response headers");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    if (buffer_.size() > (1u << 20)) {
      Close();
      return Status::ParseError("response headers exceed 1 MiB");
    }
  }

  ClientResponse response;
  const std::string_view head =
      std::string_view(buffer_).substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  size_t content_length = 0;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line =
        head.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    if (line.empty() && !first) break;
    if (first) {
      first = false;
      // "HTTP/1.1 200 OK"
      if (line.size() < 12 || line.substr(0, 5) != "HTTP/") {
        Close();
        return Status::ParseError("malformed status line: '" +
                                  std::string(line) + "'");
      }
      const size_t sp = line.find(' ');
      if (sp == std::string_view::npos || sp + 4 > line.size()) {
        Close();
        return Status::ParseError("malformed status line");
      }
      int code = 0;
      for (size_t i = sp + 1; i < sp + 4 && i < line.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
          Close();
          return Status::ParseError("non-numeric status code");
        }
        code = code * 10 + (line[i] - '0');
      }
      response.code = code;
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    std::string value(TrimOws(line.substr(colon + 1)));
    if (name == "content-length") {
      content_length = 0;
      for (const char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          Close();
          return Status::ParseError("malformed Content-Length");
        }
        content_length = content_length * 10 + (c - '0');
      }
    } else if (name == "connection") {
      response.keep_alive = ToLower(value) != "close";
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  // Body: exactly content_length bytes after the header terminator.
  const size_t body_start = header_end + 4;
  while (buffer_.size() - body_start < content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = ErrnoString(errno);
      Close();
      return Status::IoError("recv() body: " + detail);
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed mid-body");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);

  if (!response.keep_alive) Close();
  return response;
}

StatusOr<ClientResponse> HttpClient::Request(
    std::string_view method, std::string_view target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view body) {
  std::string wire;
  wire.reserve(128 + body.size());
  wire += method;
  wire += ' ';
  wire += target;
  wire += " HTTP/1.1\r\nHost: 127.0.0.1:";
  wire += std::to_string(port_);
  wire += "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name;
    wire += ": ";
    wire += value;
    wire += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: ";
    wire += std::to_string(body.size());
    wire += "\r\n";
  }
  wire += "\r\n";
  wire += body;

  Status status = SendRaw(wire);
  if (!status.ok()) return status;
  return ReadResponse();
}

StatusOr<ClientResponse> HttpClient::Get(std::string_view target) {
  return Request("GET", target, {}, "");
}

StatusOr<ClientResponse> HttpClient::Post(std::string_view target,
                                          std::string_view body,
                                          std::string_view content_type) {
  return Request("POST", target,
                 {{"Content-Type", std::string(content_type)}}, body);
}

}  // namespace xsact::server
