// Minimal blocking HTTP/1.1 client for exercising the XSACT server from
// tests and benchmarks. Deliberately small: keep-alive reuse over one
// connection, fixed Content-Length responses only (which is all the
// server emits), and raw-socket escape hatches (SendRaw / Close /
// fd()) so chaos tests can speak broken HTTP on purpose.
//
// Not a general-purpose client: no TLS, no redirects, no chunked
// response decoding, no connection pooling.

#ifndef XSACT_SERVER_HTTP_CLIENT_H_
#define XSACT_SERVER_HTTP_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace xsact::server {

/// One parsed response. Header names are lowercased.
struct ClientResponse {
  int code = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< server's Connection header decision

  const std::string* FindHeader(std::string_view name) const;
};

/// Blocking client bound to one 127.0.0.1 port. Connects lazily on the
/// first request and reuses the connection while the server keeps it
/// alive. Not thread-safe; use one instance per thread.
class HttpClient {
 public:
  /// `recv_timeout_ms` bounds every blocking read so a wedged server
  /// fails the test instead of hanging it.
  explicit HttpClient(int port, int recv_timeout_ms = 10000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  StatusOr<ClientResponse> Get(std::string_view target);
  StatusOr<ClientResponse> Post(std::string_view target,
                                std::string_view body,
                                std::string_view content_type =
                                    "application/json");

  /// Fully general request; `headers` are sent verbatim after Host.
  StatusOr<ClientResponse> Request(
      std::string_view method, std::string_view target,
      const std::vector<std::pair<std::string, std::string>>& headers,
      std::string_view body);

  // ---- raw-socket surface (chaos tests) -------------------------------

  /// Ensures the socket is connected (no-op when already connected).
  Status Connect();
  bool connected() const { return fd_ >= 0; }

  /// Writes bytes verbatim — malformed HTTP welcome.
  Status SendRaw(std::string_view bytes);

  /// Reads one full response off the wire (status line + headers +
  /// Content-Length body). Usable after SendRaw of a handwritten
  /// request.
  StatusOr<ClientResponse> ReadResponse();

  /// Abruptly closes the connection (mid-request disconnects).
  void Close();

  int fd() const { return fd_; }

 private:
  int port_;
  int recv_timeout_ms_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous response
};

}  // namespace xsact::server

#endif  // XSACT_SERVER_HTTP_CLIENT_H_
