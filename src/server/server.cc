#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/errno_util.h"
#include "common/faultpoint.h"
#include "table/renderer.h"

namespace xsact::server {

namespace {

using Clock = std::chrono::steady_clock;

// Fault points on every transport path (docs/robustness.md). A fired
// fault is handled exactly like the real I/O error it models: the
// affected connection is dropped, the server keeps serving.
const fault::FaultPointId kFaultAccept =
    fault::RegisterFaultPoint("server.accept");
const fault::FaultPointId kFaultRead =
    fault::RegisterFaultPoint("server.read");
const fault::FaultPointId kFaultWrite =
    fault::RegisterFaultPoint("server.write");

/// Bytes a client may send that the parser cannot yet consume —
/// pipelined requests queued behind an in-flight evaluation. Beyond
/// this the connection is a flood, not a pipeline. (Bytes of the
/// request currently being parsed don't count against this: the parser
/// consumes them immediately, bounded by its own HttpParserLimits.)
constexpr size_t kMaxBufferedInput = 64 * 1024;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ErrorJson(int http_status, std::string_view detail) {
  std::string out = "{\"error\":{\"status\":";
  out += std::to_string(http_status);
  out += ",\"reason\":\"";
  out += JsonEscape(HttpReasonPhrase(http_status));
  out += "\",\"detail\":\"";
  out += JsonEscape(detail);
  out += "\"}}\n";
  return out;
}

void AppendCounter(std::string* out, std::string_view name, uint64_t value,
                   bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += name;
  *out += "\":";
  *out += std::to_string(value);
}

}  // namespace

struct HttpServer::Connection {
  Connection(int fd, const HttpParserLimits& limits, Clock::time_point now)
      : fd(fd),
        parser(limits),
        last_read(now),
        last_write_progress(now) {}

  int fd = -1;
  HttpParser parser;
  /// Received-but-unparsed bytes: pipelined requests, or input arriving
  /// while the engine evaluates the current one. Bounded.
  std::string pending_input;
  std::string outbuf;
  size_t out_off = 0;
  Clock::time_point last_read;
  Clock::time_point last_write_progress;
  bool close_after_flush = false;
  bool request_keep_alive = true;
  /// Engine round-trip state. `cancel` must stay at a stable address and
  /// alive until `future` is ready — the engine may read it until then.
  bool awaiting = false;
  std::future<StatusOr<engine::OutcomePtr>> future;
  std::unique_ptr<CancelSource> cancel;
};

HttpServer::HttpServer(engine::ServiceRouter* router, ServerOptions options)
    : router_(router), options_(std::move(options)) {}

HttpServer::~HttpServer() {
  // Live or zombie, a connection whose engine future is unresolved may
  // still be referenced by the engine (its CancelSource): block until
  // the future resolves before destroying it.
  for (auto& conn : connections_) {
    if (conn->awaiting) conn->future.wait();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (auto& conn : zombies_) {
    if (conn->awaiting) conn->future.wait();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

Status HttpServer::Start() {
  if (listen_fd_ >= 0) return Status::Ok();
  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError("pipe(): " + ErrnoString(errno));
  }
  SetNonBlocking(stop_pipe_[0]);
  SetNonBlocking(stop_pipe_[1]);
  ::fcntl(stop_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(stop_pipe_[1], F_SETFD, FD_CLOEXEC);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + ErrnoString(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind(127.0.0.1:" +
                           std::to_string(options_.port) +
                           "): " + ErrnoString(err));
  }
  if (::listen(fd, options_.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("listen(): " + ErrnoString(err));
  }
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return Status::IoError("fcntl(O_NONBLOCK) on listener failed");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }
  listen_fd_ = fd;
  listener_open_ = true;
  return Status::Ok();
}

void HttpServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_at_capacity =
      rejected_at_capacity_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.responses_error = responses_error_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.cancelled_by_disconnect =
      cancelled_by_disconnect_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::Run() {
  bool forced = false;
  Clock::time_point hard_deadline{};
  std::vector<pollfd> fds;

  while (true) {
    const Clock::time_point now = Clock::now();

    // --- drain state machine ------------------------------------------
    if (stop_requested_.load(std::memory_order_acquire) &&
        !draining_.load(std::memory_order_acquire)) {
      BeginDrain();
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Idle keep-alive connections have nothing to finish: close them.
      for (auto& conn : connections_) {
        if (conn && !conn->parser.started() && !conn->awaiting &&
            conn->outbuf.size() == conn->out_off) {
          CloseConnection(std::move(conn));
        }
      }
      connections_.erase(
          std::remove(connections_.begin(), connections_.end(), nullptr),
          connections_.end());
      if (connections_.empty() && zombies_.empty()) break;
      if (!forced && now >= drain_deadline_) {
        ForceDrain();
        forced = true;
        hard_deadline = now + std::chrono::milliseconds(1000);
      }
      if (forced && now >= hard_deadline) {
        // Stragglers: the engine has been Shutdown(), so every future
        // WILL resolve; wait it out rather than freeing a CancelSource
        // the engine might still read.
        for (auto& conn : connections_) {
          // LINT:ALLOW(blocking-call): post-ForceDrain only; the engine
          // is Shutdown() so the future resolves within one cooperative
          // cancellation check, and the loop is exiting anyway.
          if (conn->awaiting) conn->future.wait();
          ::close(conn->fd);
          conn->fd = -1;
        }
        connections_.clear();
        for (auto& conn : zombies_) {
          // LINT:ALLOW(blocking-call): same post-ForceDrain guarantee.
          if (conn->awaiting) conn->future.wait();
          ::close(conn->fd);
          conn->fd = -1;
        }
        zombies_.clear();
        break;
      }
    }

    // --- build the poll set -------------------------------------------
    fds.clear();
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    const size_t wakeup_slot = fds.size();
    if (options_.wakeup_fd >= 0) {
      fds.push_back({options_.wakeup_fd, POLLIN, 0});
    }
    const size_t listen_slot = fds.size();
    if (listener_open_) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t conn_base = fds.size();
    const size_t num_conns = connections_.size();
    bool any_awaiting = !zombies_.empty();
    for (const auto& conn : connections_) {
      short events = 0;
      if (conn->outbuf.size() > conn->out_off) events |= POLLOUT;
      // Always watch for input/EOF: disconnects must be seen even while
      // the engine is busy on this connection's request.
      events |= POLLIN;
      fds.push_back({conn->fd, events, 0});
      if (conn->awaiting) any_awaiting = true;
    }

    // Tick: engine futures have no fd, so poll briefly while any are
    // pending; otherwise sleep until the nearest timeout could fire.
    int tick_ms = any_awaiting ? 2 : 50;
    if (draining_.load(std::memory_order_acquire)) {
      tick_ms = std::min(tick_ms, 10);
    }
    const int ready = ::poll(fds.data(), fds.size(), tick_ms);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed: bail

    const Clock::time_point after = Clock::now();

    // --- wakeups -------------------------------------------------------
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(stop_pipe_[0], buf, sizeof(buf)) > 0) {
      }
      BeginDrain();
    }
    if (options_.wakeup_fd >= 0 && (fds[wakeup_slot].revents & POLLIN)) {
      // Do not drain the external pipe — other loops may share it.
      BeginDrain();
    }

    // --- accept --------------------------------------------------------
    if (listener_open_ && fds.size() > listen_slot &&
        fds[listen_slot].fd == listen_fd_ &&
        (fds[listen_slot].revents & POLLIN)) {
      AcceptPending();
    }

    // --- per-connection events ----------------------------------------
    for (size_t i = 0; i < num_conns; ++i) {
      auto& conn = connections_[i];
      if (!conn) continue;
      const short revents = fds[conn_base + i].revents;
      bool alive = true;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = HandleReadable(conn.get());
      }
      if (alive && conn->awaiting &&
          conn->future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        FinishQuery(conn.get());
      }
      if (alive && conn->outbuf.size() > conn->out_off) {
        alive = HandleWritable(conn.get());
      }
      if (alive) alive = CheckTimeouts(conn.get(), after);
      if (!alive) CloseConnection(std::move(conn));
    }

    // Futures can become ready with no socket activity at all.
    for (auto& conn : connections_) {
      if (!conn || !conn->awaiting) continue;
      if (conn->future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        FinishQuery(conn.get());
        if (conn->outbuf.size() > conn->out_off) {
          if (!HandleWritable(conn.get())) CloseConnection(std::move(conn));
        }
      }
    }

    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), nullptr),
        connections_.end());

    // Reap zombies whose engine work has resolved.
    zombies_.erase(
        std::remove_if(zombies_.begin(), zombies_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->future.wait_for(
                                    std::chrono::seconds(0)) ==
                                std::future_status::ready;
                       }),
        zombies_.end());
  }

  if (listener_open_) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    listener_open_ = false;
  }
}

void HttpServer::BeginDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drain_budget_ms);
  if (listener_open_) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    listener_open_ = false;
  }
}

void HttpServer::ForceDrain() {
  // Budget exhausted: tell the engine to resolve everything it holds.
  for (const std::string& name : router_->dataset_names()) {
    if (engine::QueryService* service = router_->service(name)) {
      service->Shutdown();
    }
  }
  for (auto& conn : connections_) {
    if (conn->cancel) conn->cancel->Cancel();
  }
  for (auto& conn : zombies_) {
    if (conn->cancel) conn->cancel->Cancel();
  }
}

void HttpServer::AcceptPending() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      // Transient accept failures (EMFILE, ECONNABORTED...) must not
      // kill the loop; try again next tick.
      return;
    }
    const Status fault = fault::CheckFaultPoint(kFaultAccept);
    if (!fault.ok()) {
      ::close(fd);
      continue;
    }
    if (connections_.size() + zombies_.size() >= options_.max_connections) {
      rejected_at_capacity_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.code = 503;
      resp.body = ErrorJson(503, "connection limit reached");
      resp.close = true;
      const std::string wire = SerializeResponse(resp, false);
      // Best effort; the peer may not even read it.
      [[maybe_unused]] const ssize_t n =
          ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_.push_back(std::make_unique<Connection>(
        fd, options_.parser_limits, Clock::now()));
  }
}

bool HttpServer::HandleReadable(Connection* conn) {
  const Status fault = fault::CheckFaultPoint(kFaultRead);
  if (!fault.ok()) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  char buf[8192];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (n == 0) {
      // Peer closed. CloseConnection fires the request's cancel if the
      // engine still owns one and keeps the object alive (as a zombie)
      // until the future resolves.
      if (conn->awaiting || conn->parser.started() ||
          conn->outbuf.size() > conn->out_off) {
        disconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    conn->last_read = Clock::now();
    if (!conn->close_after_flush) {
      conn->pending_input.append(buf, static_cast<size_t>(n));
    }
    // Parse eagerly between reads so a large-but-legal body (up to
    // max_body_bytes) arriving in one burst is consumed as it lands;
    // only bytes the parser cannot take yet count toward the cap.
    ParseBuffered(conn);
    if (conn->pending_input.size() > kMaxBufferedInput) {
      // Flooding while a request is in flight (or between requests).
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  ParseBuffered(conn);
  return true;
}

void HttpServer::ParseBuffered(Connection* conn) {
  while (!conn->awaiting && !conn->close_after_flush &&
         !conn->pending_input.empty()) {
    const size_t used = conn->parser.Feed(conn->pending_input);
    conn->pending_input.erase(0, used);
    if (conn->parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      responses_error_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.code = conn->parser.error_code();
      resp.body = ErrorJson(resp.code, conn->parser.error_detail());
      resp.close = true;  // framing is untrustworthy from here on
      QueueResponse(conn, std::move(resp));
      conn->pending_input.clear();
      return;
    }
    if (!conn->parser.done()) return;  // need more bytes
    requests_.fetch_add(1, std::memory_order_relaxed);
    DispatchRequest(conn);
    if (!conn->awaiting) {
      if (!conn->request_keep_alive) {
        conn->pending_input.clear();
      } else if (!conn->close_after_flush) {
        conn->parser.Reset();  // next pipelined request
      }
    }
  }
}

bool HttpServer::HandleWritable(Connection* conn) {
  const Status fault = fault::CheckFaultPoint(kFaultWrite);
  if (!fault.ok()) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
    conn->last_write_progress = Clock::now();
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  return !conn->close_after_flush;  // flushed; close if requested
}

bool HttpServer::CheckTimeouts(Connection* conn, Clock::time_point now) {
  if (conn->outbuf.size() > conn->out_off) {
    // A response is pending and the peer isn't reading it.
    if (now - conn->last_write_progress >
        std::chrono::milliseconds(options_.write_timeout_ms)) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;  // write timer governs while flushing
  }
  if (conn->awaiting || conn->close_after_flush) return true;
  if (conn->parser.started()) {
    // Mid-request silence: slow-loris. Answer 408 and close.
    if (now - conn->last_read >
        std::chrono::milliseconds(options_.read_timeout_ms)) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      responses_error_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.code = 408;
      resp.body = ErrorJson(408, "request not completed within " +
                                     std::to_string(options_.read_timeout_ms) +
                                     " ms");
      resp.close = true;
      QueueResponse(conn, std::move(resp));
    }
  } else if (now - conn->last_read >
             std::chrono::milliseconds(options_.idle_timeout_ms)) {
    return false;  // idle keep-alive connection: close silently
  }
  return true;
}

void HttpServer::DispatchRequest(Connection* conn) {
  const HttpRequest& req = conn->parser.request();
  conn->request_keep_alive = req.keep_alive;

  std::string_view raw_path;
  std::string_view query_string;
  SplitTarget(req.target, &raw_path, &query_string);
  std::string path;
  if (!PercentDecode(raw_path, &path)) {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.code = 400;
    resp.body = ErrorJson(400, "undecodable request path");
    QueueResponse(conn, std::move(resp));
    return;
  }

  if (req.method != "GET" && req.method != "POST") {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.code = 405;
    resp.body = ErrorJson(405, "method '" + req.method + "' not supported");
    resp.extra_headers.emplace_back("Allow", "GET, POST");
    QueueResponse(conn, std::move(resp));
    return;
  }

  if (path == "/healthz") {
    HttpResponse resp;
    if (draining_.load(std::memory_order_acquire)) {
      resp.code = 503;
      resp.body = "{\"status\":\"draining\"}\n";
    } else {
      resp.code = 200;
      resp.body = HandleHealthz();
    }
    (resp.code == 200 ? responses_ok_ : responses_error_)
        .fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, std::move(resp));
    return;
  }
  if (path == "/statz") {
    HttpResponse resp;
    resp.code = 200;
    resp.body = HandleStatz();
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, std::move(resp));
    return;
  }
  if (path != "/query") {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.code = 404;
    resp.body = ErrorJson(404, "no such endpoint '" + path + "'");
    QueueResponse(conn, std::move(resp));
    return;
  }

  // ---- /query --------------------------------------------------------
  if (draining_.load(std::memory_order_acquire)) {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.code = 503;
    resp.body = ErrorJson(503, "server is draining");
    resp.close = true;
    QueueResponse(conn, std::move(resp));
    return;
  }

  std::string dataset;
  std::string query;
  std::string lift;
  size_t max_results = 0;
  int timeout_ms = options_.default_deadline_ms;
  for (const auto& [name, value] :
       ParseQueryParams(query_string)) {
    if (name == "dataset") {
      dataset = value;
    } else if (name == "q") {
      query = value;
    } else if (name == "lift") {
      lift = value;
    } else if (name == "max_results" || name == "timeout_ms") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos ||
          value.size() > 9) {
        responses_error_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse resp;
        resp.code = 400;
        resp.body =
            ErrorJson(400, "parameter '" + name + "' must be a number");
        QueueResponse(conn, std::move(resp));
        return;
      }
      const long parsed = std::strtol(value.c_str(), nullptr, 10);
      if (name == "max_results") {
        max_results = static_cast<size_t>(parsed);
      } else {
        timeout_ms = static_cast<int>(parsed);
      }
    }
    // Unknown parameters are ignored (forward compatibility).
  }
  if (query.empty() && req.method == "POST") query = req.body;
  if (dataset.empty() && router_->num_datasets() == 1) {
    dataset = router_->dataset_names().front();
  }
  if (query.empty() || dataset.empty()) {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.code = 400;
    resp.body = ErrorJson(
        400, query.empty()
                 ? "missing query: pass ?q=... or a POST body"
                 : "missing ?dataset=... (several datasets are served)");
    QueueResponse(conn, std::move(resp));
    return;
  }

  engine::CompareOptions copts;
  if (!lift.empty()) copts.lift_results_to = lift;
  const engine::Deadline deadline =
      timeout_ms > 0
          ? Clock::now() + std::chrono::milliseconds(timeout_ms)
          : engine::kNoDeadline;
  conn->cancel = std::make_unique<CancelSource>();
  conn->future = router_->Submit(dataset, std::move(query), copts,
                                 max_results, deadline, conn->cancel.get());
  conn->awaiting = true;
}

void HttpServer::FinishQuery(Connection* conn) {
  StatusOr<engine::OutcomePtr> result = conn->future.get();
  conn->awaiting = false;
  // The future is ready: the engine can no longer dereference the
  // cancel source, so its lifetime obligation has ended.
  conn->cancel.reset();

  HttpResponse resp;
  if (result.ok()) {
    resp.code = 200;
    // EXACTLY the direct-path rendering — bench_server_serve gates that
    // HTTP bodies are byte-identical to table::RenderJson on the
    // outcome returned by ServiceRouter::Submit.
    resp.body = table::RenderJson((*result)->table);
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const Status& status = result.status();
    resp.code = HttpStatusForCode(status.code());
    resp.body = ErrorJson(resp.code, status.ToString());
    if (resp.code == 429) {
      resp.extra_headers.emplace_back("Retry-After", "1");
    }
    responses_error_.fetch_add(1, std::memory_order_relaxed);
  }
  QueueResponse(conn, std::move(resp));

  // Pipelined follow-up requests may already be buffered; feed them
  // through the same path as fresh reads.
  if (conn->request_keep_alive && !conn->close_after_flush) {
    conn->parser.Reset();
    ParseBuffered(conn);
  } else {
    conn->pending_input.clear();
  }
}

void HttpServer::QueueResponse(Connection* conn, HttpResponse response) {
  const bool draining = draining_.load(std::memory_order_acquire);
  const bool keep_alive = conn->request_keep_alive && !response.close &&
                          !conn->close_after_flush && !draining;
  conn->outbuf += SerializeResponse(response, keep_alive);
  if (!keep_alive) conn->close_after_flush = true;
  conn->last_write_progress = Clock::now();
  // Restart the idle clock: an engine evaluation longer than
  // idle_timeout_ms must not get the keep-alive connection closed as
  // "idle" the moment its response flushes.
  conn->last_read = conn->last_write_progress;
}

void HttpServer::CloseConnection(std::unique_ptr<Connection> conn) {
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (conn->awaiting) {
    // Every close path — EOF, recv/write errors, timeouts, floods —
    // abandons in-flight engine work, not just clean EOF.
    if (conn->cancel) {
      cancelled_by_disconnect_.fetch_add(1, std::memory_order_relaxed);
      conn->cancel->Cancel();
    }
    if (conn->future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      // Engine work still references conn->cancel: keep the object
      // alive until the future resolves (reaped in Run's zombie pass).
      zombies_.push_back(std::move(conn));
    }
  }
}

std::string HttpServer::HandleHealthz() const {
  const engine::RouterStats stats = router_->stats();
  const uint64_t unhealthy = stats.total_unhealthy();
  std::string out = "{\"status\":\"";
  out += unhealthy == 0 ? "ok" : "degraded";
  out += "\",\"datasets\":";
  out += std::to_string(stats.datasets.size());
  out += ",\"unhealthy\":";
  out += std::to_string(unhealthy);
  out += "}\n";
  return out;
}

std::string HttpServer::HandleStatz() const {
  const ServerStats s = stats();
  std::string out = "{\"server\":{";
  bool first = true;
  AppendCounter(&out, "accepted", s.accepted, &first);
  AppendCounter(&out, "rejected_at_capacity", s.rejected_at_capacity,
                &first);
  AppendCounter(&out, "requests", s.requests, &first);
  AppendCounter(&out, "responses_ok", s.responses_ok, &first);
  AppendCounter(&out, "responses_error", s.responses_error, &first);
  AppendCounter(&out, "parse_errors", s.parse_errors, &first);
  AppendCounter(&out, "timeouts", s.timeouts, &first);
  AppendCounter(&out, "disconnects", s.disconnects, &first);
  AppendCounter(&out, "cancelled_by_disconnect", s.cancelled_by_disconnect,
                &first);
  out += "},\"draining\":";
  out += draining_.load(std::memory_order_acquire) ? "true" : "false";
  out += ",\"router\":";
  out += RouterStatsJson(router_->stats());
  out += "}\n";
  return out;
}

std::string RouterStatsJson(const engine::RouterStats& stats) {
  std::string out = "{\"datasets\":[";
  bool first_dataset = true;
  for (const engine::DatasetStats& d : stats.datasets) {
    if (!first_dataset) out += ',';
    first_dataset = false;
    out += "{\"dataset\":\"";
    out += JsonEscape(d.dataset);
    out += "\",\"epoch\":";
    out += std::to_string(d.epoch);
    out += ",\"cache\":{";
    bool first = true;
    AppendCounter(&out, "hits", d.cache.hits, &first);
    AppendCounter(&out, "misses", d.cache.misses, &first);
    AppendCounter(&out, "evictions", d.cache.evictions, &first);
    AppendCounter(&out, "entries", d.cache.entries, &first);
    out += "},\"admission\":{";
    first = true;
    AppendCounter(&out, "admitted", d.admission.admitted, &first);
    AppendCounter(&out, "shed", d.admission.shed, &first);
    AppendCounter(&out, "deadline_exceeded", d.admission.deadline_exceeded,
                  &first);
    AppendCounter(&out, "cancelled", d.admission.cancelled, &first);
    AppendCounter(&out, "queue_depth", d.admission.queue_depth, &first);
    out += "},\"health\":{\"healthy\":";
    out += d.health.healthy ? "true" : "false";
    out += ",\"reload_successes\":";
    out += std::to_string(d.health.reload_successes);
    out += ",\"reload_failures\":";
    out += std::to_string(d.health.reload_failures);
    out += ",\"reload_attempts\":";
    out += std::to_string(d.health.reload_attempts);
    out += ",\"last_error\":\"";
    out += JsonEscape(d.health.last_error);
    out += "\"}}";
  }
  out += "],\"totals\":{";
  bool first = true;
  AppendCounter(&out, "shed", stats.total_shed(), &first);
  AppendCounter(&out, "deadline_exceeded", stats.total_deadline_exceeded(),
                &first);
  AppendCounter(&out, "queue_depth", stats.total_queue_depth(), &first);
  AppendCounter(&out, "unhealthy", stats.total_unhealthy(), &first);
  out += "}}";
  return out;
}

}  // namespace xsact::server
