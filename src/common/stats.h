// Streaming descriptive statistics used by the benchmark harnesses.

#ifndef XSACT_COMMON_STATS_H_
#define XSACT_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace xsact {

/// Accumulates samples and reports mean / stddev / min / max / percentiles.
///
/// Percentile queries sort an internal copy lazily; intended for benchmark
/// reporting (thousands of samples), not hot paths.
class SampleStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    samples_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    if (samples_.size() == 1) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
  }

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Arithmetic mean (0 when empty).
  double Mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  /// Population standard deviation (0 when fewer than 2 samples).
  double StdDev() const {
    const size_t n = samples_.size();
    if (n < 2) return 0.0;
    const double mean = Mean();
    double var = sum_sq_ / static_cast<double>(n) - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  /// p-th percentile via nearest-rank on a sorted copy, p in [0, 100].
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double Median() const { return Percentile(50.0); }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xsact

#endif  // XSACT_COMMON_STATS_H_
