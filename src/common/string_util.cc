#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace xsact {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view input) {
  // Delegates to ForEachToken so index-time and query-time tokenization
  // can never drift apart.
  std::vector<std::string> out;
  std::string scratch;
  ForEachToken(input, &scratch,
               [&](std::string_view token) { out.emplace_back(token); });
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string_view ComposeTagKey(std::string_view first, std::string_view second,
                               std::string* scratch) {
  scratch->assign(first);
  scratch->push_back('\x1f');
  scratch->append(second);
  return *scratch;
}

void FoldCase(std::string* s, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    (*s)[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>((*s)[i])));
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace xsact
