#include "common/faultpoint.h"

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace xsact::fault {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct FaultPoint {
  // name/kind are written once under the registry lock before the point
  // is published and immutable afterwards — readable without mu.
  std::string name;
  FaultSiteKind kind = FaultSiteKind::kStatus;

  Mutex mu;
  bool armed XSACT_GUARDED_BY(mu) = false;
  FaultSpec spec XSACT_GUARDED_BY(mu);
  Rng rng XSACT_GUARDED_BY(mu){0};
  /// Hits since last arm (while injection enabled).
  uint64_t hits XSACT_GUARDED_BY(mu) = 0;
  /// Fires since last arm.
  uint64_t fires XSACT_GUARDED_BY(mu) = 0;
};

/// Registry of every site linked into the binary. Leaked on purpose so
/// sites hit during static destruction (worker threads joining late)
/// never touch a destroyed registry.
class Registry {
 public:
  static Registry& Get() {
    static Registry* instance = new Registry;
    return *instance;
  }

  FaultPointId Register(std::string_view name, FaultSiteKind kind) {
    MutexLock lock(mu_);
    const auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) return it->second;
    const FaultPointId id = static_cast<FaultPointId>(points_.size());
    auto point = std::make_unique<FaultPoint>();
    point->name.assign(name);
    point->kind = kind;
    points_.push_back(std::move(point));
    by_name_.emplace(points_.back()->name, id);
    return id;
  }

  FaultPoint* point(FaultPointId id) {
    MutexLock lock(mu_);
    if (id < 0 || static_cast<size_t>(id) >= points_.size()) return nullptr;
    return points_[static_cast<size_t>(id)].get();
  }

  FaultPointId Find(std::string_view name) {
    MutexLock lock(mu_);
    const auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? kInvalidFaultPoint : it->second;
  }

  std::vector<FaultPointInfo> All() {
    MutexLock lock(mu_);
    std::vector<FaultPointInfo> out;
    out.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); ++i) {
      out.push_back(FaultPointInfo{static_cast<FaultPointId>(i),
                                   points_[i]->name, points_[i]->kind});
    }
    return out;
  }

  size_t size() {
    MutexLock lock(mu_);
    return points_.size();
  }

 private:
  Mutex mu_;  // per-point state has its own lock (FaultPoint::mu)
  std::vector<std::unique_ptr<FaultPoint>> points_ XSACT_GUARDED_BY(mu_);
  std::unordered_map<std::string, FaultPointId> by_name_
      XSACT_GUARDED_BY(mu_);
};

}  // namespace

FaultPointId RegisterFaultPoint(std::string_view name, FaultSiteKind kind) {
  return Registry::Get().Register(name, kind);
}

void ArmFaultPoint(FaultPointId id, const FaultSpec& spec) {
  FaultPoint* p = Registry::Get().point(id);
  if (p == nullptr) return;
  MutexLock lock(p->mu);
  if (!p->armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  p->armed = true;
  p->spec = spec;
  p->rng = Rng(spec.seed);
  p->hits = 0;
  p->fires = 0;
}

bool ArmFaultPointByName(std::string_view name, const FaultSpec& spec) {
  const FaultPointId id = Registry::Get().Find(name);
  if (id == kInvalidFaultPoint) return false;
  ArmFaultPoint(id, spec);
  return true;
}

void DisarmFaultPoint(FaultPointId id) {
  FaultPoint* p = Registry::Get().point(id);
  if (p == nullptr) return;
  MutexLock lock(p->mu);
  if (p->armed) {
    p->armed = false;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFaultPoints() {
  const size_t n = Registry::Get().size();
  for (size_t i = 0; i < n; ++i) {
    DisarmFaultPoint(static_cast<FaultPointId>(i));
  }
}

std::vector<FaultPointInfo> AllFaultPoints() { return Registry::Get().All(); }

FaultPointId FindFaultPoint(std::string_view name) {
  return Registry::Get().Find(name);
}

uint64_t FaultPointHits(FaultPointId id) {
  FaultPoint* p = Registry::Get().point(id);
  if (p == nullptr) return 0;
  MutexLock lock(p->mu);
  return p->hits;
}

uint64_t FaultPointFires(FaultPointId id) {
  FaultPoint* p = Registry::Get().point(id);
  if (p == nullptr) return 0;
  MutexLock lock(p->mu);
  return p->fires;
}

namespace internal {

Status Check(FaultPointId id) {
  FaultPoint* p = Registry::Get().point(id);
  if (p == nullptr) return Status();
  int delay_ms = 0;
  Status injected;
  {
    MutexLock lock(p->mu);
    if (!p->armed) return Status();
    const uint64_t hit = ++p->hits;
    if (hit <= p->spec.skip_hits) return Status();
    if (p->spec.max_fires > 0 && p->fires >= p->spec.max_fires) {
      return Status();
    }
    if (p->spec.probability < 1.0 && !p->rng.Chance(p->spec.probability)) {
      return Status();
    }
    ++p->fires;
    delay_ms = p->spec.delay_ms;
    if (p->spec.code != StatusCode::kOk) {
      injected = Status(p->spec.code,
                        p->spec.message.empty()
                            ? "injected fault at '" + p->name + "'"
                            : p->spec.message);
    }
  }
  // Sleep outside the lock so a delay fault never serializes concurrent
  // hits of the same site beyond the injected latency itself.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

}  // namespace internal

}  // namespace xsact::fault
