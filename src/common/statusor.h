// StatusOr<T>: value-or-error union used by fallible producers.

#ifndef XSACT_COMMON_STATUSOR_H_
#define XSACT_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xsact {

/// Holds either a `T` or a non-OK `Status`.
///
/// Usage:
/// ```
/// StatusOr<Document> doc = Parser::Parse(text);
/// if (!doc.ok()) return doc.status();
/// Use(doc.value());
/// ```
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit to allow `return value;`).
  StatusOr(T value)  // NOLINT(google-explicit-constructor): implicit by design
      : value_(std::move(value)) {}

  /// Constructs from an error status. Must not be OK: an OK status carries
  /// no value and would leave the StatusOr in an inconsistent state.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor): implicit by design
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Accessors for the contained value. Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ has a value
  std::optional<T> value_;
};

}  // namespace xsact

#endif  // XSACT_COMMON_STATUSOR_H_
