// Error-propagation and invariant-checking macros.

#ifndef XSACT_COMMON_MACROS_H_
#define XSACT_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define XSACT_RETURN_IF_ERROR(expr)                       \
  do {                                                    \
    ::xsact::Status xsact_status_ = (expr);               \
    if (!xsact_status_.ok()) return xsact_status_;        \
  } while (false)

#define XSACT_CONCAT_IMPL(a, b) a##b
#define XSACT_CONCAT(a, b) XSACT_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a StatusOr expression); on success assigns its value to
/// `lhs`, otherwise returns the error status from the enclosing function.
#define XSACT_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  auto XSACT_CONCAT(xsact_statusor_, __LINE__) = (rexpr);                \
  if (!XSACT_CONCAT(xsact_statusor_, __LINE__).ok())                     \
    return XSACT_CONCAT(xsact_statusor_, __LINE__).status();             \
  lhs = std::move(XSACT_CONCAT(xsact_statusor_, __LINE__)).value()

/// Aborts the process when an internal invariant is broken. Used for
/// programmer errors, never for malformed user input (use Status for that).
#define XSACT_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "XSACT_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define XSACT_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "XSACT_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // XSACT_COMMON_MACROS_H_
