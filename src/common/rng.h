// Deterministic pseudo-random number generation for workload synthesis.
//
// All XSACT dataset generators and benchmarks are seeded, so every run of
// the reproduction produces the same documents, queries and tables. We use
// SplitMix64 for seeding and xoshiro256** as the workhorse generator
// (both public-domain algorithms by Blackman & Vigna).

#ifndef XSACT_COMMON_RNG_H_
#define XSACT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace xsact {

/// SplitMix64: tiny 64-bit generator, used to expand a single seed into
/// the 256-bit state required by Xoshiro256.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit pseudo-random value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG used for all synthetic data.
class Rng {
 public:
  /// Seeds the full state deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed = 0xD1FF5E7ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    XSACT_CHECK(bound > 0);
    // Debiased modulo via rejection sampling on the top range.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    XSACT_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    XSACT_CHECK(!items.empty());
    return items[Below(items.size())];
  }

  /// Zipf-distributed rank in [0, n) with skew `s` (s=0 is uniform).
  ///
  /// Used to make some feature types far more popular than others, matching
  /// the heavy-tailed attribute popularity of real review/catalog data.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[Below(i + 1)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace xsact

#endif  // XSACT_COMMON_RNG_H_
