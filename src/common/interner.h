// String interning: maps strings to dense integer ids.
//
// XSACT's feature catalog compares feature types and values billions of
// times inside the swap loops; interning turns those comparisons into
// integer equality and makes tie-breaking deterministic.

#ifndef XSACT_COMMON_INTERNER_H_
#define XSACT_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace xsact {

/// Bidirectional string <-> dense-id map. Ids are assigned in insertion
/// order starting at 0, which also gives a stable deterministic ordering.
class StringInterner {
 public:
  /// Returns the id for `s`, inserting it if new.
  int32_t Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    const int32_t id = static_cast<int32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s`, or -1 when not interned.
  int32_t Find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? -1 : it->second;
  }

  /// Returns the string for a valid id.
  const std::string& Lookup(int32_t id) const {
    XSACT_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[static_cast<size_t>(id)];
  }

  /// Number of interned strings.
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> ids_;
};

}  // namespace xsact

#endif  // XSACT_COMMON_INTERNER_H_
