// String interning: maps strings to dense integer ids.
//
// XSACT's feature catalog compares feature types and values billions of
// times inside the swap loops; interning turns those comparisons into
// integer equality and makes tie-breaking deterministic.
//
// Lookups are heterogeneous: Find/Intern take a string_view and probe the
// hash table directly, so a cache hit allocates nothing. Interned strings
// live in a deque (stable addresses), and the map keys are views into it.

#ifndef XSACT_COMMON_INTERNER_H_
#define XSACT_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/macros.h"

namespace xsact {

/// Bidirectional string <-> dense-id map. Ids are assigned in insertion
/// order starting at 0, which also gives a stable deterministic ordering.
class StringInterner {
 public:
  StringInterner() = default;
  /// Not copyable: a copy's map keys would be views into the SOURCE's
  /// storage. Moves keep views valid (deque elements do not relocate).
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `s`, inserting it if new. Allocates only when `s`
  /// has not been seen before.
  int32_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const int32_t id = static_cast<int32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(std::string_view(strings_.back()), id);
    return id;
  }

  /// Returns the id for `s`, or -1 when not interned. Allocation-free.
  int32_t Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? -1 : it->second;
  }

  /// Returns the string for a valid id.
  const std::string& Lookup(int32_t id) const {
    XSACT_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[static_cast<size_t>(id)];
  }

  /// Number of interned strings.
  size_t size() const { return strings_.size(); }

  /// Removes every interned string; the hash table keeps its buckets, so
  /// a cleared interner re-fills without rehash churn (workspace reuse).
  void Clear() {
    ids_.clear();
    strings_.clear();
  }

 private:
  std::deque<std::string> strings_;  // deque: stable addresses for the keys
  std::unordered_map<std::string_view, int32_t> ids_;
};

}  // namespace xsact

#endif  // XSACT_COMMON_INTERNER_H_
