// Small string helpers shared across modules (tokenization, case folding,
// joining). Keyword matching in the search engine is case-insensitive and
// token-based, so these utilities define the library's canonical notion of
// a "term".

#ifndef XSACT_COMMON_STRING_UTIL_H_
#define XSACT_COMMON_STRING_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace xsact {

/// Splits `input` on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits `input` into maximal runs of alphanumeric characters, lowercased.
/// This is the tokenizer used for both indexing and query parsing.
std::vector<std::string> Tokenize(std::string_view input);

/// Allocation-light tokenizer: calls `fn(std::string_view token)` for each
/// token of `input` (same tokens, in the same order, as Tokenize). The
/// lowercased token bytes live in `*scratch`, which is reused across calls
/// — the view is only valid until the next token is produced.
template <typename Fn>
void ForEachToken(std::string_view input, std::string* scratch, Fn&& fn) {
  scratch->clear();
  for (char c : input) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      scratch->push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!scratch->empty()) {
      fn(std::string_view(*scratch));
      scratch->clear();
    }
  }
  if (!scratch->empty()) fn(std::string_view(*scratch));
}

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII-lowercases `(*s)[begin..end)` in place. The library's single
/// case-folding primitive: indexing-time and query-time folding must stay
/// byte-identical (the extractor's precomputed-vs-dynamic equivalence
/// depends on it).
void FoldCase(std::string* s, size_t begin, size_t end);

/// ASCII-lowercases all of `*s` in place.
inline void FoldCase(std::string* s) { FoldCase(s, 0, s->size()); }

/// Composes "first\x1fsecond" into the caller-supplied `*scratch` and
/// returns a view of it (valid until `*scratch` is next mutated). The
/// unit separator cannot occur in tag or attribute names, so the
/// composition is unambiguous; the schema and the feature catalog both
/// key their interners with this. Routing through an explicit buffer
/// keeps the view's lifetime in the caller's hands: no hidden
/// thread-local state, so an unrelated call on the same thread can
/// never invalidate a live view.
std::string_view ComposeTagKey(std::string_view first, std::string_view second,
                               std::string* scratch);

/// True iff `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` fractional digits (locale-independent).
std::string FormatDouble(double value, int digits);

}  // namespace xsact

#endif  // XSACT_COMMON_STRING_UTIL_H_
