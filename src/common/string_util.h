// Small string helpers shared across modules (tokenization, case folding,
// joining). Keyword matching in the search engine is case-insensitive and
// token-based, so these utilities define the library's canonical notion of
// a "term".

#ifndef XSACT_COMMON_STRING_UTIL_H_
#define XSACT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsact {

/// Splits `input` on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits `input` into maximal runs of alphanumeric characters, lowercased.
/// This is the tokenizer used for both indexing and query parsing.
std::vector<std::string> Tokenize(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True iff `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` fractional digits (locale-independent).
std::string FormatDouble(double value, int digits);

}  // namespace xsact

#endif  // XSACT_COMMON_STRING_UTIL_H_
