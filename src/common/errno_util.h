// Thread-safe errno → message rendering.
//
// std::strerror writes into shared static storage on some C libraries,
// so clang-tidy's concurrency-mt-unsafe (rightly) rejects it in code
// that runs on server threads. ErrnoString wraps strerror_r instead —
// and papers over the POSIX/GNU signature split by overload resolution,
// so it compiles unchanged whether the platform's strerror_r returns
// int (XSI) or char* (glibc with _GNU_SOURCE).

#ifndef XSACT_COMMON_ERRNO_UTIL_H_
#define XSACT_COMMON_ERRNO_UTIL_H_

#include <string.h>

#include <string>

namespace xsact {

namespace internal {

/// XSI strerror_r: 0 = buf filled; nonzero = unknown errno.
inline std::string ErrnoResult(int rc, const char* buf, int err) {
  if (rc == 0) return std::string(buf);
  return "errno " + std::to_string(err);
}

/// GNU strerror_r: returns the message (buf, or an immutable static).
inline std::string ErrnoResult(const char* msg, const char* /*buf*/,
                               int /*err*/) {
  return std::string(msg);
}

}  // namespace internal

/// Message for `err` (an errno value), safe from any thread.
inline std::string ErrnoString(int err) {
  char buf[256] = {};
  return internal::ErrnoResult(::strerror_r(err, buf, sizeof(buf)), buf, err);
}

}  // namespace xsact

#endif  // XSACT_COMMON_ERRNO_UTIL_H_
