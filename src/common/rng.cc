#include "common/rng.h"

#include <cmath>

namespace xsact {

size_t Rng::Zipf(size_t n, double s) {
  XSACT_CHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return Below(n);
  // Inverse-CDF sampling over the (unnormalized) Zipf mass 1/k^s.
  // n is small in all our workloads (tens to hundreds), so a linear scan
  // over precomputable partial sums is simpler and fast enough; we compute
  // the normalizer on the fly to keep the generator stateless w.r.t. n/s.
  double norm = 0.0;
  for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace xsact
