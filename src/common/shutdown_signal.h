// Process-wide graceful-shutdown signal plumbing (SIGINT / SIGTERM).
//
// Long-running serving modes (the HTTP front-end's event loop, the CLI
// --watch poll loops) must drain cleanly when the operator sends
// SIGTERM/SIGINT instead of dying mid-publication. Signal handlers can
// do almost nothing safely, so the handler installed here only does the
// two async-signal-safe things that matter: set a process-wide atomic
// flag and write one byte to a self-pipe. Poll loops either test
// ShutdownRequested() at their natural cadence or add
// ShutdownWakeupFd() to their poll set to be woken immediately.
//
// RequestShutdown() triggers the same state programmatically — tests
// and embedding code use it in place of a real signal. The state is
// sticky; ResetShutdownState() (tests only) clears it.
//
// Thread safety: all functions are thread-safe; the handler itself is
// async-signal-safe. One-time installation is serialized by an
// annotated xsact::Mutex (checked by -Wthread-safety); the handler
// itself touches only lock-free atomics — a signal handler must never
// take a lock its interrupted thread might hold.

#ifndef XSACT_COMMON_SHUTDOWN_SIGNAL_H_
#define XSACT_COMMON_SHUTDOWN_SIGNAL_H_

namespace xsact {

/// Installs SIGINT + SIGTERM handlers (idempotent). Creates the wakeup
/// self-pipe on first call. Must be called from a normal thread context
/// before the signals may arrive.
void InstallShutdownSignalHandlers();

/// True once a shutdown signal arrived (or RequestShutdown() ran).
bool ShutdownRequested();

/// Read end of the wakeup self-pipe: becomes readable when shutdown is
/// requested, so poll/select loops wake without polling the flag.
/// Returns -1 until InstallShutdownSignalHandlers() (or
/// RequestShutdown()) has run. Never read from it directly if several
/// loops share it — treat readability as "check ShutdownRequested()".
int ShutdownWakeupFd();

/// Programmatic trigger with the exact semantics of a received signal.
void RequestShutdown();

/// Clears the sticky flag and drains the wakeup pipe (tests only).
void ResetShutdownState();

}  // namespace xsact

#endif  // XSACT_COMMON_SHUTDOWN_SIGNAL_H_
