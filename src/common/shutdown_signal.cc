#include "common/shutdown_signal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xsact {

namespace {

std::atomic<bool> g_shutdown_requested{false};
// The self-pipe; fds are created once and never closed (process-lifetime
// resource, like the signal disposition itself). Atomics because the
// WRITE end is read inside the signal handler, which can never take
// g_init_mu (a handler interrupting the lock holder would self-deadlock).
std::atomic<int> g_wakeup_read_fd{-1};
std::atomic<int> g_wakeup_write_fd{-1};

// One-time-installation state. A plain annotated mutex instead of
// std::once_flag so the discipline is visible to -Wthread-safety (and
// because std::call_once's callable is opaque to the analysis).
Mutex g_init_mu;
bool g_pipe_created XSACT_GUARDED_BY(g_init_mu) = false;
bool g_handlers_installed XSACT_GUARDED_BY(g_init_mu) = false;

void EnsurePipeLocked() XSACT_REQUIRES(g_init_mu) {
  if (g_pipe_created) return;
  g_pipe_created = true;  // one attempt, like the once_flag it replaces
  int fds[2];
  if (::pipe(fds) != 0) return;  // flag-only operation still works
  // Non-blocking on both ends: the handler must never block on a full
  // pipe, and loops draining it must never block on an empty one.
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  g_wakeup_read_fd.store(fds[0], std::memory_order_release);
  g_wakeup_write_fd.store(fds[1], std::memory_order_release);
}

void SignalWakeup() {
  const int fd = g_wakeup_write_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 'x';
    // Best effort; a full pipe already guarantees readability.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void ShutdownSignalHandler(int /*signum*/) {
  // Only async-signal-safe operations: atomic store + write(2).
  g_shutdown_requested.store(true, std::memory_order_release);
  SignalWakeup();
}

}  // namespace

void InstallShutdownSignalHandlers() {
  MutexLock lock(g_init_mu);
  EnsurePipeLocked();
  if (g_handlers_installed) return;
  g_handlers_installed = true;
  struct sigaction action = {};
  action.sa_handler = &ShutdownSignalHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking syscalls in loops without the wakeup fd
  // still return EINTR and re-check the flag promptly.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

int ShutdownWakeupFd() {
  return g_wakeup_read_fd.load(std::memory_order_acquire);
}

void RequestShutdown() {
  {
    MutexLock lock(g_init_mu);
    EnsurePipeLocked();
  }
  g_shutdown_requested.store(true, std::memory_order_release);
  SignalWakeup();
}

void ResetShutdownState() {
  g_shutdown_requested.store(false, std::memory_order_release);
  const int fd = g_wakeup_read_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    char buf[64];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
}

}  // namespace xsact
