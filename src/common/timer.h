// Monotonic wall-clock timing for the benchmark harnesses.

#ifndef XSACT_COMMON_TIMER_H_
#define XSACT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xsact {

/// Stopwatch over the steady (monotonic) clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xsact

#endif  // XSACT_COMMON_TIMER_H_
