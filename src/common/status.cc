#include "common/status.h"

namespace xsact {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDataCorruption:
      return "data corruption";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace xsact
