#include "common/status.h"

namespace xsact {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDataCorruption:
      return "data corruption";
  }
  return "unknown";
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kDataCorruption:
      return 500;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

std::string_view HttpReasonPhrase(int http_status) {
  switch (http_status) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 414:
      return "URI Too Long";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Error";
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace xsact
