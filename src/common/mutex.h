// Capability-annotated mutex / condition-variable wrappers.
//
// xsact::Mutex is std::mutex carrying the Clang CAPABILITY("mutex")
// attribute, so -Wthread-safety can prove, at compile time, that every
// XSACT_GUARDED_BY field is only touched with its lock held and every
// XSACT_REQUIRES method is only called from under the right lock.
// std::mutex itself carries no capability, which makes annotations on
// it inert — that is why the project lint (tools/lint/run_lint.py)
// rejects raw std::mutex / std::lock_guard / std::condition_variable
// anywhere outside this header.
//
// The wrappers are zero-cost: every method is an inline forward to the
// std counterpart, and the attributes vanish on non-Clang compilers
// (common/thread_annotations.h).
//
// Waiting on a CondVar is deliberately predicate-free:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);          // fields check under lock
//
// rather than cv.wait(lock, [&]{ return ready_; }). A predicate lambda
// is a separate function to the analysis, so guarded fields read inside
// it would need their own annotations or an escape hatch; an explicit
// while-loop keeps the accesses inside the annotated scope where the
// analysis can verify them. Timed waits return false on timeout so
// deadline loops stay explicit too (see QueryService::ReloadNow).

#ifndef XSACT_COMMON_MUTEX_H_
#define XSACT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace xsact {

/// Annotated exclusive lock. See file comment.
class XSACT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XSACT_ACQUIRE() { mu_.lock(); }
  void Unlock() XSACT_RELEASE() { mu_.unlock(); }
  bool TryLock() XSACT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock over an xsact::Mutex (the project's spelling of
/// std::lock_guard).
class XSACT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XSACT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() XSACT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with xsact::Mutex. All waits REQUIRE the
/// mutex held and return with it held; notifies need no lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken — always re-check the
  /// predicate in a loop).
  void Wait(Mutex& mu) XSACT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the unique_lock's ownership claim so the Mutex stays
    // held by the caller — the capability never changes hands.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `deadline`; false = timed out (predicate loops decide
  /// whether to retry).
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline)
      XSACT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  /// Waits at most `timeout`; false = timed out.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      XSACT_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xsact

#endif  // XSACT_COMMON_MUTEX_H_
