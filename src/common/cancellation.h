// Cooperative cancellation for in-flight query evaluation.
//
// A Cancellation is a cheap, copyable view of "when must this work stop":
// an optional deadline (steady clock) plus an optional pointer to a
// CancelSource whose owner (a draining QueryService, a shutting-down
// server) can flip it at any time. Kernels and long loops poll it at a
// coarse stride and bail out early; the caller then turns the expired
// token into a Status (DeadlineExceeded or Cancelled) and discards the
// partial result. A default-constructed Cancellation never expires, so
// every existing call site keeps its semantics by taking `= {}`.
//
// Polling discipline: `Expired()` reads the steady clock, so hot loops
// must not call it per iteration. Either use `ExpiredAmortized` with a
// caller-owned counter, or hoist `can_expire()` out of the loop and gate
// a strided check on it:
//
//   const bool expirable = cancel.can_expire();
//   for (size_t i = 0; i < n; ++i) {
//     if (expirable && (i & 4095u) == 0 && cancel.Expired()) break;
//     ...
//   }
//
// When nothing can expire (benches, plain CLI runs) the per-iteration
// cost is one register test.

#ifndef XSACT_COMMON_CANCELLATION_H_
#define XSACT_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace xsact {

/// Owner side of explicit cancellation: a sticky flag the controlling
/// component sets to stop every evaluation holding a view of it. The
/// source must outlive all Cancellation views pointing at it.
class CancelSource {
 public:
  CancelSource() = default;
  CancelSource(const CancelSource&) = delete;
  CancelSource& operator=(const CancelSource&) = delete;

  /// Requests cancellation. Sticky until Reset(); safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Clears the flag (between independent work generations).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Cheap view of a deadline and/or a CancelSource. See file comment.
class Cancellation {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel: no deadline.
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// Stride of ExpiredAmortized: one real check per this many calls.
  static constexpr uint32_t kCheckStride = 64;

  /// Never expires (the default for callers without deadlines).
  Cancellation() = default;

  /// Up to two independent cancel sources can be attached — e.g. a
  /// QueryService installs its process-wide drain signal AND the
  /// per-request disconnect signal the HTTP front-end owns; either one
  /// firing cancels the evaluation.
  explicit Cancellation(Clock::time_point deadline,
                        const CancelSource* source = nullptr,
                        const CancelSource* extra_source = nullptr)
      : deadline_(deadline), source_(source), extra_source_(extra_source) {}

  /// False iff this token can never expire — lets loops skip polling.
  bool can_expire() const {
    return source_ != nullptr || extra_source_ != nullptr ||
           deadline_ != kNoDeadline;
  }

  /// Full check: explicit cancellation, then the deadline clock. Both
  /// are sticky (the steady clock never goes backwards), so once true it
  /// stays true.
  bool Expired() const {
    if (source_ != nullptr && source_->cancelled()) return true;
    if (extra_source_ != nullptr && extra_source_->cancelled()) return true;
    return deadline_ != kNoDeadline && Clock::now() >= deadline_;
  }

  /// Strided check for hot loops: the flag/clock are consulted once per
  /// kCheckStride calls (the caller owns `*counter`, initialized to 0).
  bool ExpiredAmortized(uint32_t* counter) const {
    if (!can_expire()) return false;
    if ((++*counter & (kCheckStride - 1)) != 0) return false;
    return Expired();
  }

  /// OK while live; Cancelled when the source fired, else
  /// DeadlineExceeded when the deadline passed. Explicit cancellation
  /// wins when both hold (the owner asked first).
  Status Check() const {
    if ((source_ != nullptr && source_->cancelled()) ||
        (extra_source_ != nullptr && extra_source_->cancelled())) {
      return Status::Cancelled("request cancelled");
    }
    if (deadline_ != kNoDeadline && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("deadline exceeded during evaluation");
    }
    return Status::Ok();
  }

 private:
  Clock::time_point deadline_ = kNoDeadline;
  const CancelSource* source_ = nullptr;
  const CancelSource* extra_source_ = nullptr;
};

}  // namespace xsact

#endif  // XSACT_COMMON_CANCELLATION_H_
