// Clang thread-safety-analysis attribute macros.
//
// These macros let the locking discipline of a class be stated in its
// declaration — which mutex guards which field, which private methods
// may only run with a lock held — and have Clang PROVE it on every
// build with -Wthread-safety (see docs/static_analysis.md). Unlike
// TSAN, which can only flag interleavings the test suite happens to
// produce, the analysis covers every call path statically.
//
// On compilers without the attributes (GCC, MSVC) every macro expands
// to nothing, so annotated code builds everywhere; the proof runs in
// the static-analysis CI job (clang++ -Wthread-safety -Werror).
//
// Use the xsact::Mutex / xsact::MutexLock / xsact::CondVar wrappers
// from common/mutex.h — std::mutex carries no capability attribute, so
// annotations on it are inert. tools/lint/run_lint.py enforces that no
// raw std::mutex appears outside common/mutex.h.
//
// Annotation policy (short form; full version in
// docs/static_analysis.md):
//   * XSACT_GUARDED_BY(mu)  on every field written by more than one
//     thread under a lock.
//   * XSACT_REQUIRES(mu)    on private helpers that assume the caller
//     holds the lock.
//   * XSACT_EXCLUDES(mu)    on public methods that take the lock
//     themselves (documents non-reentrancy).
//   * std::atomic fields need no annotation; hot-path atomics must
//     spell their memory_order explicitly (also lint-enforced).

#ifndef XSACT_COMMON_THREAD_ANNOTATIONS_H_
#define XSACT_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define XSACT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define XSACT_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Class attribute: instances of this type are lockable capabilities.
/// `x` names the capability kind in diagnostics (e.g. "mutex").
#define XSACT_CAPABILITY(x) XSACT_THREAD_ANNOTATION_(capability(x))

/// Class attribute: RAII type that acquires a capability in its
/// constructor and releases it in its destructor (e.g. MutexLock).
#define XSACT_SCOPED_CAPABILITY XSACT_THREAD_ANNOTATION_(scoped_lockable)

/// Field attribute: reads and writes require holding `x`.
#define XSACT_GUARDED_BY(x) XSACT_THREAD_ANNOTATION_(guarded_by(x))

/// Field attribute: the POINTED-TO data requires holding `x` (the
/// pointer itself may be read freely).
#define XSACT_PT_GUARDED_BY(x) XSACT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares a required lock-acquisition order between capabilities.
#define XSACT_ACQUIRED_BEFORE(...) \
  XSACT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define XSACT_ACQUIRED_AFTER(...) \
  XSACT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function attribute: the caller must hold the listed capabilities
/// exclusively (they are neither acquired nor released here).
#define XSACT_REQUIRES(...) \
  XSACT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function attribute: the caller must hold the capabilities at least
/// shared (reader) mode.
#define XSACT_REQUIRES_SHARED(...) \
  XSACT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capabilities; caller must NOT
/// already hold them.
#define XSACT_ACQUIRE(...) \
  XSACT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define XSACT_ACQUIRE_SHARED(...) \
  XSACT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capabilities; caller must hold them.
#define XSACT_RELEASE(...) \
  XSACT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define XSACT_RELEASE_SHARED(...) \
  XSACT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value
/// equals `b` (e.g. TryLock).
#define XSACT_TRY_ACQUIRE(...) \
  XSACT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the capabilities (the
/// function acquires them itself; guards against self-deadlock).
#define XSACT_EXCLUDES(...) \
  XSACT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (at runtime, to the analysis) that the
/// capability is held without acquiring it.
#define XSACT_ASSERT_CAPABILITY(x) \
  XSACT_THREAD_ANNOTATION_(assert_capability(x))

/// Function attribute: the returned reference IS the capability `x`
/// (lets accessors expose a member mutex).
#define XSACT_RETURN_CAPABILITY(x) \
  XSACT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// must carry a comment justifying it; the lint flags bare uses.
#define XSACT_NO_THREAD_SAFETY_ANALYSIS \
  XSACT_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Marker (no codegen effect) for functions that run on an
/// HttpServer-style poll() event-loop thread. tools/lint/run_lint.py
/// scans the bodies of marked functions for blocking calls (sleeps,
/// blocking file IO, unbounded future waits) that would stall every
/// connection the loop serves.
#define XSACT_EVENT_LOOP_THREAD

#endif  // XSACT_COMMON_THREAD_ANNOTATIONS_H_
