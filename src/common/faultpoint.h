// Deterministic fault injection for robustness testing.
//
// A fault point is a named site in production code where tests can make
// the library fail (return an injected Status), stall (sleep), or both,
// without recompiling. Sites register themselves once at static
// initialization, so the registry enumerates every site linked into the
// binary — the chaos suite (tests/fault_injection_test.cc) walks it and
// new sites are covered automatically.
//
// Zero cost when disabled: the only work on the production path is one
// relaxed atomic load of a global "anything armed" flag (plus a
// predictable branch). No site takes a lock, allocates, or reads a clock
// unless at least one fault point is armed process-wide.
//
// Declaring a site (at namespace scope in the owning .cc):
//
//   const fault::FaultPointId kFaultIoRead =
//       fault::RegisterFaultPoint("io.read_file");
//
// Injecting at the site, inside a Status/StatusOr-returning function:
//
//   XSACT_INJECT_FAULT(kFaultIoRead);
//
// Hit-only sites (hot paths with no Status channel; injected errors are
// dropped, delays still apply) use XSACT_FAULT_HIT and register with
// FaultSiteKind::kHitOnly so tests know not to expect an error surface.
//
// Determinism: an armed site fires per its FaultSpec — skip the first N
// hits, fire at most M times, fire with probability p driven by a
// caller-seeded RNG. Same seed + same execution order => same faults.
// Arming resets the site's hit/fire counters.
//
// Thread safety: all functions are thread-safe. Arm/disarm from tests
// while worker threads hit the sites concurrently is supported.

#ifndef XSACT_COMMON_FAULTPOINT_H_
#define XSACT_COMMON_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xsact::fault {

/// Dense id of a registered fault point (stable for the process life).
using FaultPointId = int;

inline constexpr FaultPointId kInvalidFaultPoint = -1;

/// How a site surfaces an injected fault.
enum class FaultSiteKind : uint8_t {
  kStatus,   ///< the injected Status propagates to the site's caller
  kHitOnly,  ///< only counts/delays; any injected error code is dropped
};

/// What an armed fault point does when it fires.
struct FaultSpec {
  /// Error returned at kStatus sites. kOk = fire without failing
  /// (useful for pure latency injection at any site).
  StatusCode code = StatusCode::kInternal;
  /// Error message; empty = "injected fault at '<site name>'".
  std::string message;
  /// Fire on each eligible hit with this probability (1.0 = always),
  /// drawn from an RNG seeded with `seed` at arm time.
  double probability = 1.0;
  uint64_t seed = 0;
  /// Skip the first `skip_hits` hits after arming, then become eligible.
  uint64_t skip_hits = 0;
  /// Stop firing after this many fires (0 = unlimited).
  uint64_t max_fires = 0;
  /// Sleep this long on every fire (latency injection).
  int delay_ms = 0;
};

/// Registration metadata, as enumerated by AllFaultPoints().
struct FaultPointInfo {
  FaultPointId id = kInvalidFaultPoint;
  std::string name;
  FaultSiteKind kind = FaultSiteKind::kStatus;
};

/// Registers (or looks up) the site named `name`. Idempotent: the same
/// name always yields the same id. Intended for namespace-scope
/// initializers in the .cc that owns the site.
FaultPointId RegisterFaultPoint(std::string_view name,
                                FaultSiteKind kind = FaultSiteKind::kStatus);

/// Arms `id` with `spec` (replacing any previous arming) and resets the
/// site's hit/fire counters. No-op on an invalid id.
void ArmFaultPoint(FaultPointId id, const FaultSpec& spec);

/// Arms by name; false when no such site is registered.
bool ArmFaultPointByName(std::string_view name, const FaultSpec& spec);

/// Disarms `id` (counters retained for inspection). No-op when invalid.
void DisarmFaultPoint(FaultPointId id);

/// Disarms every registered site.
void DisarmAllFaultPoints();

/// All registered sites, in registration order.
std::vector<FaultPointInfo> AllFaultPoints();

/// Id of the site named `name`, or kInvalidFaultPoint.
FaultPointId FindFaultPoint(std::string_view name);

/// Times the site was reached while fault injection was enabled, since
/// it was last armed. (Sites are not counted when nothing is armed —
/// the disabled fast path does no bookkeeping at all.)
uint64_t FaultPointHits(FaultPointId id);

/// Times the site actually fired (injected an error and/or delay) since
/// it was last armed.
uint64_t FaultPointFires(FaultPointId id);

namespace internal {

/// Count of currently armed sites; > 0 enables the slow path globally.
extern std::atomic<int> g_armed_count;

/// Slow path: consults the registry; returns the injected error for an
/// armed, firing kStatus site, OK otherwise. Applies delays.
Status Check(FaultPointId id);

}  // namespace internal

/// True iff any fault point is armed (one relaxed atomic load).
inline bool FaultInjectionEnabled() {
  return internal::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Full check for call sites that want the Status without a macro.
inline Status CheckFaultPoint(FaultPointId id) {
  if (!FaultInjectionEnabled()) return Status();
  return internal::Check(id);
}

}  // namespace xsact::fault

/// Status-surfacing injection site: returns the injected Status from the
/// enclosing function (which must return Status or StatusOr<T>).
#define XSACT_INJECT_FAULT(id)                                          \
  do {                                                                  \
    if (::xsact::fault::FaultInjectionEnabled()) {                      \
      ::xsact::Status xsact_injected_ = ::xsact::fault::internal::Check(id); \
      if (!xsact_injected_.ok()) return xsact_injected_;                \
    }                                                                   \
  } while (false)

/// Hit-only site: counts the hit and applies any armed delay; injected
/// error codes are dropped (the site has no Status channel).
#define XSACT_FAULT_HIT(id)                                             \
  do {                                                                  \
    if (::xsact::fault::FaultInjectionEnabled()) {                      \
      (void)::xsact::fault::internal::Check(id);                        \
    }                                                                   \
  } while (false)

#endif  // XSACT_COMMON_FAULTPOINT_H_
