// Status: canonical error propagation type for fallible XSACT operations.
//
// Modeled on the Status idiom used by production database codebases
// (Arrow, RocksDB, LevelDB): cheap to move, explicit error codes, a
// human-readable message, and no exceptions across library boundaries.

#ifndef XSACT_COMMON_STATUS_H_
#define XSACT_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xsact {

/// Canonical error categories for XSACT operations.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed a malformed argument
  kNotFound = 2,          ///< a referenced object does not exist
  kAlreadyExists = 3,     ///< an object with the same key already exists
  kOutOfRange = 4,        ///< index/size constraint violated
  kParseError = 5,        ///< malformed input document / syntax error
  kInternal = 6,          ///< invariant broken inside the library
  kUnimplemented = 7,     ///< feature not available
  kIoError = 8,           ///< underlying I/O failure
  kDeadlineExceeded = 9,  ///< request missed its completion deadline
  kResourceExhausted = 10,  ///< capacity limit hit (queue full, quota)
  kCancelled = 11,          ///< request cancelled before completion
  kDataCorruption = 12,     ///< stored data failed checksum/validation
};

/// Returns a stable lowercase name for a status code ("ok", "parse error"...).
std::string_view StatusCodeToString(StatusCode code);

/// Canonical Status→HTTP response code mapping, shared by the HTTP
/// front-end (src/server/) and everything asserting on its behavior
/// (tests, the load bench, docs/serving.md). Admission-control codes map
/// to their retryable HTTP siblings: kResourceExhausted→429 (serve with
/// Retry-After), kDeadlineExceeded→504, kCancelled→499 (nginx's "client
/// closed request"), corruption/internal failures→500.
int HttpStatusForCode(StatusCode code);

/// Standard reason phrase for an HTTP status code ("Too Many Requests");
/// unknown codes yield "Error". Covers every code HttpStatusForCode can
/// produce plus the parser/front-end codes (405, 408, 413, 431, 505...).
std::string_view HttpReasonPhrase(int http_status);

/// Result of a fallible operation that produces no value.
///
/// A `Status` is either OK (the default) or carries an error code plus a
/// message. Errors are created through the named factory functions
/// (`Status::ParseError(...)` etc.). The class is cheap to copy for OK
/// statuses and allocates only when a message is attached.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when `ok()`).
  StatusCode code() const { return code_; }

  /// The attached message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prefixes the message with `context` (no-op on OK statuses); returns
  /// the modified status to allow chaining while unwinding.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace xsact

#endif  // XSACT_COMMON_STATUS_H_
