// Renderers: turn a ComparisonTable into ASCII, Markdown, HTML, CSV or
// JSON (the demo's web UI output, Figure 5, sans browser).

#ifndef XSACT_TABLE_RENDERER_H_
#define XSACT_TABLE_RENDERER_H_

#include <string>

#include "table/comparison_table.h"

namespace xsact::table {

/// Fixed-width ASCII box table for terminals.
std::string RenderAscii(const ComparisonTable& table);

/// GitHub-flavored Markdown table.
std::string RenderMarkdown(const ComparisonTable& table);

/// Standalone HTML fragment (<table>...</table>), escaped.
std::string RenderHtml(const ComparisonTable& table);

/// RFC-4180 CSV (quoted cells).
std::string RenderCsv(const ComparisonTable& table);

/// JSON object {"headers": [...], "rows": [...], "total_dod": N}.
std::string RenderJson(const ComparisonTable& table);

}  // namespace xsact::table

#endif  // XSACT_TABLE_RENDERER_H_
