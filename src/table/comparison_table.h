// ComparisonTable: the user-facing artifact XSACT produces (Figure 2).
//
// One column per compared result, one row per feature type selected in at
// least one DFS. A cell shows the dominant value of the type in that
// result plus its relative occurrence; absent types render as "-" (the
// paper's "null"/unknown semantics).

#ifndef XSACT_TABLE_COMPARISON_TABLE_H_
#define XSACT_TABLE_COMPARISON_TABLE_H_

#include <string>
#include <vector>

#include "core/dfs.h"
#include "core/instance.h"

namespace xsact::table {

/// One row of the comparison table.
struct TableRow {
  feature::TypeId type_id = feature::kInvalidTypeId;
  std::string label;               ///< "entity.attribute"
  std::vector<std::string> cells;  ///< one per result; "-" when absent
  int selected_in = 0;             ///< number of DFSs containing the type
  bool differentiating = false;    ///< differentiable for >= 1 selected pair
};

/// The rendered-model of a comparison.
struct ComparisonTable {
  std::vector<std::string> headers;  ///< result labels
  std::vector<TableRow> rows;
  int64_t total_dod = 0;
};

/// Builds the table for a DFS assignment. Rows are ordered by
/// (differentiating first, #results selecting desc, type name asc).
ComparisonTable BuildComparisonTable(const core::ComparisonInstance& instance,
                                     const std::vector<core::Dfs>& dfss);

}  // namespace xsact::table

#endif  // XSACT_TABLE_COMPARISON_TABLE_H_
