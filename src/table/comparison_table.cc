#include "table/comparison_table.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "core/dod.h"

namespace xsact::table {

ComparisonTable BuildComparisonTable(const core::ComparisonInstance& instance,
                                     const std::vector<core::Dfs>& dfss) {
  const int n = instance.num_results();
  ComparisonTable table;
  table.headers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& label = instance.result(i).label();
    table.headers.push_back(label.empty() ? "result " + std::to_string(i + 1)
                                          : label);
  }
  table.total_dod = core::TotalDod(instance, dfss);

  // Union of selected types, remembering who selected them.
  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  const auto& catalog = instance.catalog();
  for (const auto& [type_id, selectors] : selected_by) {
    TableRow row;
    row.type_id = type_id;
    row.label = catalog.TypeName(type_id);
    row.selected_in = static_cast<int>(selectors.size());
    row.cells.assign(static_cast<size_t>(n), "-");
    for (int i : selectors) {
      const feature::TypeStats* stats = instance.result(i).Find(type_id);
      if (stats == nullptr) continue;
      const feature::ValueId v = stats->DominantValue();
      std::string cell =
          v == feature::kInvalidValueId ? "?" : catalog.ValueOf(v);
      cell += " (" +
              FormatDouble(100.0 * stats->RelativeOccurrenceOf(v), 0) + "%)";
      row.cells[static_cast<size_t>(i)] = std::move(cell);
    }
    for (size_t a = 0; a < selectors.size() && !row.differentiating; ++a) {
      for (size_t b = a + 1; b < selectors.size(); ++b) {
        if (instance.Differentiable(type_id, selectors[a], selectors[b])) {
          row.differentiating = true;
          break;
        }
      }
    }
    table.rows.push_back(std::move(row));
  }

  std::stable_sort(table.rows.begin(), table.rows.end(),
                   [](const TableRow& a, const TableRow& b) {
                     if (a.differentiating != b.differentiating) {
                       return a.differentiating;
                     }
                     if (a.selected_in != b.selected_in) {
                       return a.selected_in > b.selected_in;
                     }
                     return a.label < b.label;
                   });
  return table;
}

}  // namespace xsact::table
