#include "table/comparison_table.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/selection_state.h"

namespace xsact::table {

ComparisonTable BuildComparisonTable(const core::ComparisonInstance& instance,
                                     const std::vector<core::Dfs>& dfss) {
  const int n = instance.num_results();
  ComparisonTable table;
  table.headers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& label = instance.result(i).label();
    table.headers.push_back(label.empty() ? "result " + std::to_string(i + 1)
                                          : label);
  }

  // Read-only selection masks over the assignment: one word-packed mask of
  // selecting results per dense type, total DoD as a popcount sweep.
  const core::SelectionState state(instance, dfss);
  table.total_dod = state.TotalDod();

  const core::DiffMatrix& matrix = instance.diff_matrix();
  const int words = matrix.words_per_mask();
  const auto& catalog = instance.catalog();
  // Dense type order is ascending TypeId, matching the sorted-map walk
  // this replaces row for row.
  for (int t = 0; t < matrix.num_types(); ++t) {
    const uint64_t* mask = state.SelectedMask(t);
    const int selected_in = core::bits::Popcount(mask, words);
    if (selected_in == 0) continue;

    TableRow row;
    row.type_id = matrix.TypeAt(t);
    row.label = catalog.TypeName(row.type_id);
    row.selected_in = selected_in;
    row.cells.assign(static_cast<size_t>(n), "-");
    core::bits::ForEachBit(mask, words, [&](int i) {
      const int entry_index = instance.EntryIndexOfDenseType(i, t);
      if (entry_index < 0) return;
      const core::Entry& entry =
          instance.entries(i)[static_cast<size_t>(entry_index)];
      const feature::ValueId v = entry.dominant_value;
      std::string cell =
          v == feature::kInvalidValueId ? "?" : catalog.ValueOf(v);
      cell += " (" +
              FormatDouble(100.0 * entry.DominantRelOccurrence(), 0) + "%)";
      row.cells[static_cast<size_t>(i)] = std::move(cell);
      // Differentiating iff some selected pair differs on the type: any
      // selecting result with a selected partner in its diff row.
      if (!row.differentiating &&
          core::bits::PopcountAnd(matrix.Row(t, i), mask, words) > 0) {
        row.differentiating = true;
      }
    });
    table.rows.push_back(std::move(row));
  }

  std::stable_sort(table.rows.begin(), table.rows.end(),
                   [](const TableRow& a, const TableRow& b) {
                     if (a.differentiating != b.differentiating) {
                       return a.differentiating;
                     }
                     if (a.selected_in != b.selected_in) {
                       return a.selected_in > b.selected_in;
                     }
                     return a.label < b.label;
                   });
  return table;
}

}  // namespace xsact::table
