#include "table/renderer.h"

#include <algorithm>

#include "common/string_util.h"

namespace xsact::table {

namespace {

std::vector<std::vector<std::string>> Grid(const ComparisonTable& table) {
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> head = {"feature"};
  head.insert(head.end(), table.headers.begin(), table.headers.end());
  head.push_back("diff?");
  grid.push_back(std::move(head));
  for (const TableRow& row : table.rows) {
    std::vector<std::string> line = {row.label};
    line.insert(line.end(), row.cells.begin(), row.cells.end());
    line.push_back(row.differentiating ? "*" : "");
    grid.push_back(std::move(line));
  }
  return grid;
}

std::string HtmlEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string CsvEscape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderAscii(const ComparisonTable& table) {
  const auto grid = Grid(table);
  std::vector<size_t> widths(grid[0].size(), 0);
  for (const auto& line : grid) {
    for (size_t c = 0; c < line.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
  }
  auto rule = [&]() {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };
  std::string out = rule();
  for (size_t r = 0; r < grid.size(); ++r) {
    out += "|";
    for (size_t c = 0; c < grid[r].size(); ++c) {
      out += " " + grid[r][c] +
             std::string(widths[c] - grid[r][c].size(), ' ') + " |";
    }
    out += "\n";
    if (r == 0) out += rule();
  }
  out += rule();
  out += "total DoD: " + std::to_string(table.total_dod) + "\n";
  return out;
}

std::string RenderMarkdown(const ComparisonTable& table) {
  const auto grid = Grid(table);
  std::string out;
  for (size_t r = 0; r < grid.size(); ++r) {
    out += "|";
    for (const std::string& cell : grid[r]) {
      out += " " + ReplaceAll(cell, "|", "\\|") + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (size_t c = 0; c < grid[0].size(); ++c) out += " --- |";
      out += "\n";
    }
  }
  return out;
}

std::string RenderHtml(const ComparisonTable& table) {
  std::string out = "<table class=\"xsact-comparison\">\n  <thead><tr>";
  out += "<th>feature</th>";
  for (const std::string& h : table.headers) {
    out += "<th>" + HtmlEscape(h) + "</th>";
  }
  out += "</tr></thead>\n  <tbody>\n";
  for (const TableRow& row : table.rows) {
    out += row.differentiating ? "    <tr class=\"diff\">" : "    <tr>";
    out += "<td>" + HtmlEscape(row.label) + "</td>";
    for (const std::string& cell : row.cells) {
      out += "<td>" + HtmlEscape(cell) + "</td>";
    }
    out += "</tr>\n";
  }
  out += "  </tbody>\n</table>\n";
  return out;
}

std::string RenderCsv(const ComparisonTable& table) {
  const auto grid = Grid(table);
  std::string out;
  for (const auto& line : grid) {
    for (size_t c = 0; c < line.size(); ++c) {
      if (c > 0) out += ",";
      out += CsvEscape(line[c]);
    }
    out += "\n";
  }
  return out;
}

std::string RenderJson(const ComparisonTable& table) {
  std::string out = "{\"headers\":[";
  for (size_t i = 0; i < table.headers.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(table.headers[i]) + "\"";
  }
  out += "],\"rows\":[";
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const TableRow& row = table.rows[r];
    if (r > 0) out += ",";
    out += "{\"feature\":\"" + JsonEscape(row.label) + "\",\"cells\":[";
    for (size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) out += ",";
      out += "\"" + JsonEscape(row.cells[c]) + "\"";
    }
    out += "],\"differentiating\":";
    out += row.differentiating ? "true" : "false";
    out += "}";
  }
  out += "],\"total_dod\":" + std::to_string(table.total_dod) + "}";
  return out;
}

}  // namespace xsact::table
