#include "table/explainer.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace xsact::table {

namespace {

std::string LabelOf(const core::ComparisonInstance& instance, int i) {
  const std::string& label = instance.result(i).label();
  return label.empty() ? "result " + std::to_string(i + 1) : label;
}

std::string Percent(double rel) {
  return FormatDouble(100.0 * rel, 0) + "%";
}

}  // namespace

std::vector<Explanation> ExplainDifferences(
    const core::ComparisonInstance& instance,
    const std::vector<core::Dfs>& dfss, size_t max_statements) {
  const int n = instance.num_results();
  const auto& catalog = instance.catalog();

  // Collect, per type, the results whose DFS selects it.
  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  std::vector<Explanation> out;
  for (const auto& [type_id, holders] : selected_by) {
    // Find the most contrasting differentiable pair for the sentence and
    // count how many pairs the type separates.
    int pairs = 0;
    int best_a = -1;
    int best_b = -1;
    double best_contrast = -1;
    for (size_t x = 0; x < holders.size(); ++x) {
      for (size_t y = x + 1; y < holders.size(); ++y) {
        const int a = holders[x];
        const int b = holders[y];
        if (!instance.Differentiable(type_id, a, b)) continue;
        ++pairs;
        const feature::TypeStats* sa = instance.result(a).Find(type_id);
        const feature::TypeStats* sb = instance.result(b).Find(type_id);
        const double contrast =
            std::abs(sa->RelativeOccurrenceOf(sa->DominantValue()) -
                     sb->RelativeOccurrenceOf(sb->DominantValue())) +
            (sa->DominantValue() != sb->DominantValue() ? 1.0 : 0.0);
        if (contrast > best_contrast) {
          best_contrast = contrast;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (pairs == 0) continue;

    const feature::TypeStats* sa = instance.result(best_a).Find(type_id);
    const feature::TypeStats* sb = instance.result(best_b).Find(type_id);
    const feature::ValueId va = sa->DominantValue();
    const feature::ValueId vb = sb->DominantValue();
    Explanation e;
    e.type_id = type_id;
    e.pairs_differentiated = pairs;
    const std::string attr = catalog.AttributeOf(type_id);
    if (va != vb) {
      e.text = attr + " is \"" + catalog.ValueOf(va) + "\" for " +
               LabelOf(instance, best_a) + " but \"" + catalog.ValueOf(vb) +
               "\" for " + LabelOf(instance, best_b);
    } else {
      e.text = attr + " holds for " +
               Percent(sa->RelativeOccurrenceOf(va)) + " of " +
               LabelOf(instance, best_a) + "'s " + catalog.EntityOf(type_id) +
               "s vs " + Percent(sb->RelativeOccurrenceOf(vb)) + " of " +
               LabelOf(instance, best_b) + "'s";
    }
    out.push_back(std::move(e));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Explanation& a, const Explanation& b) {
                     return a.pairs_differentiated > b.pairs_differentiated;
                   });
  if (out.size() > max_statements) out.resize(max_statements);
  return out;
}

std::string RenderExplanations(
    const std::vector<Explanation>& explanations) {
  std::string out;
  for (const Explanation& e : explanations) {
    out += "  * " + e.text + "\n";
  }
  return out;
}

}  // namespace xsact::table
