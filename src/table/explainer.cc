#include "table/explainer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "core/selection_state.h"

namespace xsact::table {

namespace {

std::string LabelOf(const core::ComparisonInstance& instance, int i) {
  const std::string& label = instance.result(i).label();
  return label.empty() ? "result " + std::to_string(i + 1) : label;
}

std::string Percent(double rel) {
  return FormatDouble(100.0 * rel, 0) + "%";
}

}  // namespace

std::vector<Explanation> ExplainDifferences(
    const core::ComparisonInstance& instance,
    const std::vector<core::Dfs>& dfss, size_t max_statements) {
  const auto& catalog = instance.catalog();
  const core::DiffMatrix& matrix = instance.diff_matrix();
  const int words = matrix.words_per_mask();

  // Read-only selection masks; a type's candidate pairs are the set bits
  // of diff_row(t, a) & selected_mask(t) above a, per selecting result a —
  // the scalar all-pairs Differentiable probes collapse into word ops.
  const core::SelectionState state(instance, dfss);

  std::vector<Explanation> out;
  for (int t = 0; t < matrix.num_types(); ++t) {
    const uint64_t* mask = state.SelectedMask(t);
    if (core::bits::Popcount(mask, words) < 2) continue;
    const feature::TypeId type_id = matrix.TypeAt(t);

    // Find the most contrasting differentiable pair for the sentence and
    // count how many pairs the type separates. Bits are visited in
    // ascending (a, b) order, matching the scalar pair loop's tie-breaks.
    int pairs = 0;
    const core::Entry* best_a = nullptr;
    const core::Entry* best_b = nullptr;
    int best_a_idx = -1;
    int best_b_idx = -1;
    double best_contrast = -1;
    core::bits::ForEachBit(mask, words, [&](int a) {
      const uint64_t* row = matrix.Row(t, a);
      for (int w = 0; w < words; ++w) {
        uint64_t word = row[w] & mask[w];
        // Keep only partners b > a so each unordered pair is seen once.
        // (2 << 63 wraps to 0, so the formula also clears a full word.)
        if (w == a / core::bits::kWordBits) {
          word &= ~((uint64_t{2} << (a % core::bits::kWordBits)) - 1);
        } else if (w < a / core::bits::kWordBits) {
          word = 0;
        }
        while (word != 0) {
          const int b = w * core::bits::kWordBits + __builtin_ctzll(word);
          word &= word - 1;
          ++pairs;
          const core::Entry& ea = instance.entries(a)[static_cast<size_t>(
              instance.EntryIndexOfDenseType(a, t))];
          const core::Entry& eb = instance.entries(b)[static_cast<size_t>(
              instance.EntryIndexOfDenseType(b, t))];
          const double contrast =
              std::abs(ea.DominantRelOccurrence() -
                       eb.DominantRelOccurrence()) +
              (ea.dominant_value != eb.dominant_value ? 1.0 : 0.0);
          if (contrast > best_contrast) {
            best_contrast = contrast;
            best_a = &ea;
            best_b = &eb;
            best_a_idx = a;
            best_b_idx = b;
          }
        }
      }
    });
    if (pairs == 0) continue;

    const feature::ValueId va = best_a->dominant_value;
    const feature::ValueId vb = best_b->dominant_value;
    Explanation e;
    e.type_id = type_id;
    e.pairs_differentiated = pairs;
    const std::string attr = catalog.AttributeOf(type_id);
    if (va != vb) {
      e.text = attr + " is \"" + catalog.ValueOf(va) + "\" for " +
               LabelOf(instance, best_a_idx) + " but \"" + catalog.ValueOf(vb) +
               "\" for " + LabelOf(instance, best_b_idx);
    } else {
      e.text = attr + " holds for " +
               Percent(best_a->DominantRelOccurrence()) + " of " +
               LabelOf(instance, best_a_idx) + "'s " +
               catalog.EntityOf(type_id) + "s vs " +
               Percent(best_b->DominantRelOccurrence()) + " of " +
               LabelOf(instance, best_b_idx) + "'s";
    }
    out.push_back(std::move(e));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Explanation& a, const Explanation& b) {
                     return a.pairs_differentiated > b.pairs_differentiated;
                   });
  if (out.size() > max_statements) out.resize(max_statements);
  return out;
}

std::string RenderExplanations(
    const std::vector<Explanation>& explanations) {
  std::string out;
  for (const Explanation& e : explanations) {
    out += "  * " + e.text + "\n";
  }
  return out;
}

}  // namespace xsact::table
