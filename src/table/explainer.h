// Explainer: turns a comparison into the kind of natural-language
// takeaways the paper's demo narrates ("brand Marmot mainly sells rain
// jackets, while brand Columbia focuses on insulated ski jackets").

#ifndef XSACT_TABLE_EXPLAINER_H_
#define XSACT_TABLE_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/dfs.h"
#include "core/instance.h"

namespace xsact::table {

/// One human-readable difference statement.
struct Explanation {
  feature::TypeId type_id = feature::kInvalidTypeId;
  std::string text;
  /// Number of result pairs this type differentiates (sort key).
  int pairs_differentiated = 0;
};

/// Produces at most `max_statements` explanations for the selected DFSs,
/// most widely differentiating types first. Two sentence shapes:
///   * differing values:   "X is `a` for R1 but `b` for R2"
///   * differing shares:   "X holds for 73% of R1's reviews vs 56% of R2's"
std::vector<Explanation> ExplainDifferences(
    const core::ComparisonInstance& instance,
    const std::vector<core::Dfs>& dfss, size_t max_statements = 5);

/// Renders the explanations as a bulleted plain-text block.
std::string RenderExplanations(const std::vector<Explanation>& explanations);

}  // namespace xsact::table

#endif  // XSACT_TABLE_EXPLAINER_H_
