// Feature model: the statistics XSACT's DFS algorithms operate on.
//
// Paper §2: a FEATURE is a triplet (entity, attribute, value) with an
// occurrence count inside a result; a FEATURE TYPE is the (entity,
// attribute) pair. The running example treats opinion attributes such as
// "pro: compact" as types whose value is "yes" and whose occurrence is
// the number of reviewers agreeing — we reproduce that by qualifying the
// attribute of a multi-valued leaf with its value ("pro: compact") and
// giving the feature the value "yes" (see extractor.h).

#ifndef XSACT_FEATURE_FEATURE_H_
#define XSACT_FEATURE_FEATURE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xsact::feature {

/// Dense id of an interned (entity, attribute) pair.
using TypeId = int32_t;

/// Dense id of an interned value string.
using ValueId = int32_t;

inline constexpr TypeId kInvalidTypeId = -1;
inline constexpr ValueId kInvalidValueId = -1;

/// One value of a feature type within one result, with its occurrence.
struct ValueCount {
  ValueId value_id = kInvalidValueId;
  double count = 0;  ///< absolute occurrences within the result
};

/// All statistics of one feature type within one result.
struct TypeStats {
  TypeId type_id = kInvalidTypeId;
  /// Total occurrences of the type (sum over values). The paper's
  /// "significance" of the type within its entity.
  double occurrence = 0;
  /// Number of instances of the owning entity in this result (e.g. the
  /// "# of reviews: 11" in Figure 1). Relative occurrence = count /
  /// cardinality; never below 1.
  double entity_cardinality = 1;
  /// Values sorted by (count desc, value_id asc); front() is dominant.
  std::vector<ValueCount> values;

  /// Relative occurrence of the whole type (occurrence / cardinality).
  double RelativeOccurrence() const {
    return entity_cardinality > 0 ? occurrence / entity_cardinality : 0.0;
  }

  /// Relative occurrence of a specific value (0 when absent).
  double RelativeOccurrenceOf(ValueId value_id) const {
    for (const ValueCount& vc : values) {
      if (vc.value_id == value_id) {
        return entity_cardinality > 0 ? vc.count / entity_cardinality : 0.0;
      }
    }
    return 0.0;
  }

  /// The dominant (most frequent) value; kInvalidValueId when empty.
  ValueId DominantValue() const {
    return values.empty() ? kInvalidValueId : values.front().value_id;
  }
};

}  // namespace xsact::feature

#endif  // XSACT_FEATURE_FEATURE_H_
