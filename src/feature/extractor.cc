#include "feature/extractor.h"

#include <map>
#include <tuple>
#include <unordered_map>

#include "common/string_util.h"
#include "search/search_engine.h"

namespace xsact::feature {

namespace {

struct ExtractionState {
  // entity tag -> number of instances within the result subtree
  std::unordered_map<std::string, double> cardinality;
  // raw observations: (entity tag, attribute, value) -> count
  std::map<std::tuple<std::string, std::string, std::string>, double> obs;
};

void CountEntities(const xml::Node& node, const xml::Node& root,
                   const entity::EntitySchema& schema,
                   ExtractionState* state) {
  if (node.is_element() &&
      (&node == &root ||
       schema.CategoryOf(node) == entity::NodeCategory::kEntity)) {
    state->cardinality[node.tag()] += 1;
  }
  for (const auto& child : node.children()) {
    CountEntities(*child, root, schema, state);
  }
}

}  // namespace

ResultFeatures FeatureExtractor::Extract(const xml::Node& result_root,
                                         const entity::EntitySchema& schema,
                                         FeatureCatalog* catalog) const {
  ExtractionState state;
  CountEntities(result_root, result_root, schema, &state);

  // Walk all leaf elements and record observations.
  std::vector<const xml::Node*> stack = {&result_root};
  while (!stack.empty()) {
    const xml::Node* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children()) {
      if (child->is_element()) stack.push_back(child.get());
    }
    if (!node->is_element() || !node->IsLeafElement()) continue;
    if (node == &result_root) continue;  // a bare leaf result has no features

    std::string value = node->InnerText();
    if (value.empty() && options_.skip_empty_values) continue;
    if (options_.fold_value_case) value = ToLower(value);
    if (value.size() > options_.max_value_length) {
      value.resize(options_.max_value_length);
    }

    const entity::NodeCategory category = schema.CategoryOf(*node);
    const xml::Node* owner = schema.OwningEntity(*node, result_root);
    const std::string& entity_tag = owner->tag();

    if (category == entity::NodeCategory::kMultiAttribute) {
      // Value-qualified type, boolean feature: (review, "pro: compact", yes).
      state.obs[{entity_tag, node->tag() + ": " + value, "yes"}] += 1;
    } else {
      // Plain attribute: (product, "rating", "4.2").
      state.obs[{entity_tag, node->tag(), value}] += 1;
    }
  }

  ResultFeatures features;
  features.set_label(search::InferTitle(result_root));
  for (const auto& [key, count] : state.obs) {
    const auto& [entity_tag, attribute, value] = key;
    const TypeId type = catalog->InternType(entity_tag, attribute);
    const ValueId value_id = catalog->InternValue(value);
    auto it = state.cardinality.find(entity_tag);
    const double cardinality = it == state.cardinality.end() ? 1 : it->second;
    features.AddObservation(type, value_id, count, cardinality);
  }
  features.Seal();
  return features;
}

}  // namespace xsact::feature
