#include "feature/extractor.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "common/interner.h"
#include "common/string_util.h"
#include "search/search_engine.h"

namespace xsact::feature {

namespace internal {

/// Packed (entity, attribute, value) local-id key for one observation.
struct ObsKey {
  int32_t entity = 0;
  int32_t attr = 0;
  int32_t value = 0;

  friend bool operator==(const ObsKey& a, const ObsKey& b) {
    return a.entity == b.entity && a.attr == b.attr && a.value == b.value;
  }
};

struct ObsKeyHash {
  size_t operator()(const ObsKey& k) const {
    // splitmix-style mix of the three 32-bit ids.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.entity)) << 32) |
                 static_cast<uint32_t>(k.attr);
    x ^= static_cast<uint64_t>(static_cast<uint32_t>(k.value)) * 0x9E3779B97F4A7C15ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};

/// Per-extraction aggregation state, entirely id-based: entity tags,
/// attribute names (possibly value-qualified) and values are interned
/// into result-local ids during the walk, and observations aggregate
/// under integer keys — no per-observation string tuples. Reused across
/// Extract calls (Reset keeps capacity) so per-result extraction does not
/// rebuild its hash tables from scratch.
struct ExtractionWorkspace {
  StringInterner entities;  // entity tag -> local id
  StringInterner attrs;     // attribute (or "tag: value") -> local id
  StringInterner values;    // value string -> local id

  std::vector<double> cardinality;  // local entity id -> instance count

  struct Obs {
    ObsKey key;
    double count = 0;
  };
  std::vector<Obs> obs;
  std::unordered_map<ObsKey, int32_t, ObsKeyHash> obs_ids;

  std::string text_scratch;  // reused InnerText buffer
  std::string attr_scratch;  // reused "tag: value" composition buffer
  std::string key_scratch;   // reused schema-probe composition buffer
  std::vector<int32_t> order;  // reused flush ordering buffer

  // Epoch-stamped memos over the document-level ids of a
  // DocumentCategoryIndex: resolving a doc tag/text id to its local id
  // costs one array read after the first occurrence per extraction.
  uint32_t epoch = 0;
  std::vector<uint32_t> attr_epoch;    // doc tag id stamps
  std::vector<int32_t> attr_local;     // doc tag id -> local attr id
  std::vector<uint32_t> entity_epoch;  // doc tag id stamps
  std::vector<int32_t> entity_local;   // doc tag id -> local entity id
  std::vector<uint32_t> value_epoch;   // doc text id stamps
  std::vector<int32_t> value_local;    // doc text id -> local value id / skip
  std::unordered_map<uint64_t, int32_t> multi_local;  // (tag,text) -> attr
  int32_t yes_local = -1;

  /// value_local sentinel: the leaf yields no observation.
  static constexpr int32_t kSkip = -2;

  void Reset() {
    entities.Clear();
    attrs.Clear();
    values.Clear();
    cardinality.clear();
    obs.clear();
    obs_ids.clear();
    if (++epoch == 0) {  // wrap: invalidate every stamp before reuse
      std::fill(attr_epoch.begin(), attr_epoch.end(), 0);
      std::fill(entity_epoch.begin(), entity_epoch.end(), 0);
      std::fill(value_epoch.begin(), value_epoch.end(), 0);
      epoch = 1;
    }
    multi_local.clear();
    yes_local = -1;
  }

  int32_t InternEntity(std::string_view tag) {
    const int32_t id = entities.Intern(tag);
    if (static_cast<size_t>(id) >= cardinality.size()) {
      cardinality.resize(static_cast<size_t>(id) + 1, 0);
    }
    return id;
  }

  void CountEntity(std::string_view tag) {
    cardinality[static_cast<size_t>(InternEntity(tag))] += 1;
  }

  void Record(int32_t entity, int32_t attr, int32_t value) {
    const ObsKey key{entity, attr, value};
    const auto it = obs_ids.emplace(key, static_cast<int32_t>(obs.size()));
    if (it.second) obs.push_back(Obs{key, 0});
    obs[static_cast<size_t>(it.first->second)].count += 1;
  }
};

}  // namespace internal

namespace {

using internal::ExtractionWorkspace;
using internal::ObsKey;

/// Computes a leaf's observation value (trimmed, case-folded, truncated
/// per options) into state->text_scratch. Returns false when the leaf
/// yields no observation.
bool LeafValue(const xml::Node& node, const ExtractorOptions& options,
               ExtractionWorkspace* state, std::string_view* out) {
  std::string_view value = node.InnerTextView(&state->text_scratch);
  if (value.empty() && options.skip_empty_values) return false;
  if (options.fold_value_case) {
    const size_t begin =
        static_cast<size_t>(value.data() - state->text_scratch.data());
    FoldCase(&state->text_scratch, begin, begin + value.size());
  }
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  *out = value;
  return true;
}

/// Records one leaf observation under its owning entity.
void RecordLeaf(const xml::Node& node, entity::NodeCategory category,
                int32_t entity_id, std::string_view value,
                ExtractionWorkspace* state) {
  if (category == entity::NodeCategory::kMultiAttribute) {
    // Value-qualified type, boolean feature: (review, "pro: compact", yes).
    state->attr_scratch.assign(node.tag());
    state->attr_scratch.append(": ");
    state->attr_scratch.append(value);
    state->Record(entity_id, state->attrs.Intern(state->attr_scratch),
                  state->values.Intern("yes"));
  } else {
    // Plain attribute: (product, "rating", "4.2").
    state->Record(entity_id, state->attrs.Intern(node.tag()),
                  state->values.Intern(value));
  }
}

/// Flushes the aggregated observations in sorted (entity, attribute,
/// value) string order — the exact interning order of the
/// std::map<tuple> aggregation this replaces, so catalog id assignment
/// (and every downstream tie-break) is unchanged. Attribute and value
/// strings resolve through the caller's views (local interners, or the
/// document index's precomputed encoding); distinct ids within one id
/// space always denote distinct strings, so string compares are only
/// needed when ids differ.
template <typename AttrView, typename ValueView>
ResultFeatures Flush(ExtractionWorkspace& state, const xml::Node& result_root,
                     FeatureCatalog* catalog, AttrView&& attr_view,
                     ValueView&& value_view) {
  std::vector<int32_t>& order = state.order;
  order.resize(state.obs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
    const ObsKey& a = state.obs[static_cast<size_t>(x)].key;
    const ObsKey& b = state.obs[static_cast<size_t>(y)].key;
    if (a.entity != b.entity) {
      return state.entities.Lookup(a.entity) < state.entities.Lookup(b.entity);
    }
    if (a.attr != b.attr) return attr_view(a.attr) < attr_view(b.attr);
    return value_view(a.value) < value_view(b.value);
  });

  ResultFeatures features;
  features.set_label(search::InferTitle(result_root));
  for (const int32_t idx : order) {
    const ExtractionWorkspace::Obs& o = state.obs[static_cast<size_t>(idx)];
    const TypeId type = catalog->InternType(state.entities.Lookup(o.key.entity),
                                            attr_view(o.key.attr));
    const ValueId value_id = catalog->InternValue(value_view(o.key.value));
    const double cardinality =
        state.cardinality[static_cast<size_t>(o.key.entity)] > 0
            ? state.cardinality[static_cast<size_t>(o.key.entity)]
            : 1;
    features.AddObservation(type, value_id, o.count, cardinality);
  }
  features.Seal();
  return features;
}

}  // namespace

ExtractionScratch::ExtractionScratch()
    : impl_(std::make_unique<internal::ExtractionWorkspace>()) {}
ExtractionScratch::~ExtractionScratch() = default;
ExtractionScratch::ExtractionScratch(ExtractionScratch&&) noexcept = default;
ExtractionScratch& ExtractionScratch::operator=(ExtractionScratch&&) noexcept =
    default;

FeatureExtractor::FeatureExtractor(ExtractorOptions options)
    : options_(options) {}

ResultFeatures FeatureExtractor::Extract(const xml::Node& result_root,
                                         const entity::EntitySchema& schema,
                                         FeatureCatalog* catalog) const {
  ExtractionScratch scratch;
  return Extract(result_root, schema, catalog, &scratch);
}

ResultFeatures FeatureExtractor::Extract(
    const xml::NodeTable& table, const entity::DocumentCategoryIndex& index,
    xml::NodeId root_id, FeatureCatalog* catalog) const {
  ExtractionScratch scratch;
  return Extract(table, index, root_id, catalog, &scratch);
}

ResultFeatures FeatureExtractor::Extract(const xml::Node& result_root,
                                         const entity::EntitySchema& schema,
                                         FeatureCatalog* catalog,
                                         ExtractionScratch* scratch,
                                         const Cancellation& cancel) const {
  ExtractionWorkspace& state = *scratch->impl_;
  state.Reset();
  const bool expirable = cancel.can_expire();
  uint32_t tick = 0;

  // One non-recursive walk that does everything the seed spread over two
  // passes and per-leaf ancestor climbs: counts entity instances, records
  // leaf observations, and carries each node's owning entity down the
  // stack (owner = nearest entity ancestor-or-self, the result root when
  // none) so OwningEntity never re-walks parents. One schema probe per
  // element.
  struct Item {
    const xml::Node* node;
    const xml::Node* parent_owner;
  };
  std::vector<Item> stack = {{&result_root, &result_root}};
  while (!stack.empty()) {
    // Partial output on expiry; callers with an expirable token discard it.
    if (expirable && (++tick & 1023u) == 0 && cancel.Expired()) break;
    const Item item = stack.back();
    stack.pop_back();
    const xml::Node* node = item.node;

    entity::NodeCategory category = entity::NodeCategory::kConnection;
    const xml::Node* owner = &result_root;
    if (node == &result_root) {
      state.CountEntity(node->tag());
    } else {
      category = schema.CategoryOf(*node, &state.key_scratch);
      if (category == entity::NodeCategory::kEntity) {
        owner = node;
        state.CountEntity(node->tag());
      } else {
        owner = item.parent_owner;
      }
    }

    bool has_element_child = false;
    for (const xml::Node* child : node->children()) {
      if (child->is_element()) {
        stack.push_back(Item{child, owner});
        has_element_child = true;
      }
    }
    if (has_element_child || node == &result_root) continue;

    std::string_view value;
    if (!LeafValue(*node, options_, &state, &value)) continue;
    RecordLeaf(*node, category, state.InternEntity(owner->tag()), value,
               &state);
  }

  return Flush(
      state, result_root, catalog,
      [&](int32_t a) -> const std::string& { return state.attrs.Lookup(a); },
      [&](int32_t v) -> const std::string& { return state.values.Lookup(v); });
}

ResultFeatures FeatureExtractor::Extract(
    const xml::NodeTable& table, const entity::DocumentCategoryIndex& index,
    xml::NodeId root_id, FeatureCatalog* catalog, ExtractionScratch* scratch,
    const Cancellation& cancel) const {
  ExtractionWorkspace& state = *scratch->impl_;
  state.Reset();
  const bool expirable = cancel.can_expire();
  state.entity_epoch.resize(index.num_tags(), 0);
  state.entity_local.resize(index.num_tags(), -1);
  const uint32_t epoch = state.epoch;

  // Resolves a doc tag id to the local entity id, interning on first use.
  auto entity_of_tag = [&](int32_t tag) {
    if (state.entity_epoch[static_cast<size_t>(tag)] != epoch) {
      state.entity_epoch[static_cast<size_t>(tag)] = epoch;
      state.entity_local[static_cast<size_t>(tag)] =
          state.InternEntity(index.tag(tag));
    }
    return state.entity_local[static_cast<size_t>(tag)];
  };

  // Fast mode: the extractor's options match the encoding the index was
  // built with, so every leaf's (attribute, value) pair is already a
  // document-level id pair — the sweep does no string processing at all.
  const entity::LeafValueOptions& lv = index.leaf_value_options();
  if (options_.fold_value_case == lv.fold_value_case &&
      options_.max_value_length == lv.max_value_length &&
      options_.skip_empty_values == lv.skip_empty_values) {
    const xml::NodeId end = index.subtree_end(root_id);
    xml::NodeId memo_owner = xml::kInvalidNodeId;
    int32_t memo_entity = -1;
    for (xml::NodeId id = root_id; id < end; ++id) {
      if (expirable && ((id - root_id) & 4095) == 0 && cancel.Expired()) break;
      const entity::NodeCategory category = index.category(id);
      if (category == entity::NodeCategory::kValue) continue;  // text node
      if (id == root_id) {
        state.cardinality[static_cast<size_t>(
            entity_of_tag(index.tag_id(id)))] += 1;
        continue;  // a bare leaf result has no features
      }
      if (category == entity::NodeCategory::kEntity) {
        state.cardinality[static_cast<size_t>(
            entity_of_tag(index.tag_id(id)))] += 1;
      }
      const int32_t attr = index.obs_attr_id(id);
      if (attr < 0) continue;  // not a leaf, or skipped (empty value)
      const xml::NodeId owner_id = index.OwnerWithin(id, root_id);
      if (owner_id != memo_owner) {
        memo_owner = owner_id;
        memo_entity = entity_of_tag(index.tag_id(owner_id));
      }
      state.Record(memo_entity, attr, index.obs_value_id(id));
    }
    return Flush(
        state, *table.node(root_id), catalog,
        [&](int32_t a) -> const std::string& { return index.obs_attr(a); },
        [&](int32_t v) -> const std::string& { return index.obs_value(v); });
  }

  // Dynamic mode (options differ from the precomputed encoding):
  // processes a doc text id into the local value id (fold / truncate per
  // options), or kSkip; memoized so repeated values do no string work.
  state.attr_epoch.resize(index.num_tags(), 0);
  state.attr_local.resize(index.num_tags(), -1);
  state.value_epoch.resize(index.num_texts(), 0);
  state.value_local.resize(index.num_texts(), -1);
  auto value_of_text = [&](int32_t text) {
    if (state.value_epoch[static_cast<size_t>(text)] != epoch) {
      state.value_epoch[static_cast<size_t>(text)] = epoch;
      const std::string& raw = index.text(text);
      if (raw.empty() && options_.skip_empty_values) {
        state.value_local[static_cast<size_t>(text)] =
            ExtractionWorkspace::kSkip;
      } else {
        std::string_view value = raw;
        if (options_.fold_value_case) {
          state.text_scratch.assign(raw);
          FoldCase(&state.text_scratch, 0, state.text_scratch.size());
          value = state.text_scratch;
        }
        if (value.size() > options_.max_value_length) {
          value = value.substr(0, options_.max_value_length);
        }
        state.value_local[static_cast<size_t>(text)] =
            state.values.Intern(value);
      }
    }
    return state.value_local[static_cast<size_t>(text)];
  };

  // The subtree is the contiguous pre-order range [root_id, end): one
  // linear sweep over flat per-node id arrays — no pointer stack, no
  // schema probes, no ancestor climbs, and string work only on each
  // distinct (tag, text) first occurrence. Consecutive leaves usually
  // share their owning entity, so the owner's local id is memoized.
  const xml::NodeId end = index.subtree_end(root_id);
  xml::NodeId memo_owner = xml::kInvalidNodeId;
  int32_t memo_entity = -1;
  for (xml::NodeId id = root_id; id < end; ++id) {
    if (expirable && ((id - root_id) & 4095) == 0 && cancel.Expired()) break;
    const entity::NodeCategory category = index.category(id);
    if (category == entity::NodeCategory::kValue) continue;  // text node
    const int32_t tag = index.tag_id(id);
    if (id == root_id) {
      state.cardinality[static_cast<size_t>(entity_of_tag(tag))] += 1;
      continue;  // a bare leaf result has no features
    }
    if (category == entity::NodeCategory::kEntity) {
      state.cardinality[static_cast<size_t>(entity_of_tag(tag))] += 1;
    }
    if (!index.is_leaf_element(id)) continue;

    const int32_t text = index.text_id(id);
    const xml::NodeId owner_id = index.OwnerWithin(id, root_id);
    if (owner_id != memo_owner) {
      memo_owner = owner_id;
      memo_entity = entity_of_tag(index.tag_id(owner_id));
    }

    if (category == entity::NodeCategory::kMultiAttribute) {
      // Value-qualified type: attr = "tag: value", value = "yes"; the
      // composed attribute is memoized per (tag, text) pair.
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(tag)) << 32) |
          static_cast<uint32_t>(text);
      auto it = state.multi_local.find(key);
      int32_t attr;
      if (it != state.multi_local.end()) {
        attr = it->second;
      } else {
        const int32_t value = value_of_text(text);
        if (value == ExtractionWorkspace::kSkip) {
          attr = ExtractionWorkspace::kSkip;
        } else {
          state.attr_scratch.assign(index.tag(tag));
          state.attr_scratch.append(": ");
          state.attr_scratch.append(state.values.Lookup(value));
          attr = state.attrs.Intern(state.attr_scratch);
        }
        state.multi_local.emplace(key, attr);
      }
      if (attr == ExtractionWorkspace::kSkip) continue;
      if (state.yes_local < 0) state.yes_local = state.values.Intern("yes");
      state.Record(memo_entity, attr, state.yes_local);
    } else {
      const int32_t value = value_of_text(text);
      if (value == ExtractionWorkspace::kSkip) continue;
      if (state.attr_epoch[static_cast<size_t>(tag)] != epoch) {
        state.attr_epoch[static_cast<size_t>(tag)] = epoch;
        state.attr_local[static_cast<size_t>(tag)] =
            state.attrs.Intern(index.tag(tag));
      }
      state.Record(memo_entity, state.attr_local[static_cast<size_t>(tag)],
                   value);
    }
  }

  return Flush(
      state, *table.node(root_id), catalog,
      [&](int32_t a) -> const std::string& { return state.attrs.Lookup(a); },
      [&](int32_t v) -> const std::string& { return state.values.Lookup(v); });
}

}  // namespace xsact::feature
