// ResultFeatures: the complete feature statistics of one search result.

#ifndef XSACT_FEATURE_RESULT_FEATURES_H_
#define XSACT_FEATURE_RESULT_FEATURES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "feature/catalog.h"
#include "feature/feature.h"

namespace xsact::feature {

/// All feature statistics of one result. Produced by the extractor (or
/// built programmatically in tests/benchmarks), consumed by the DFS core.
class ResultFeatures {
 public:
  /// Display label for the result (e.g. the product name).
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Adds `count` occurrences of (type, value); merges with an existing
  /// entry for the same pair. `cardinality` is the owning entity's
  /// instance count (kept as the max reported for the type).
  void AddObservation(TypeId type, ValueId value, double count,
                      double cardinality);

  /// Finalizes value orderings (count desc, id asc). Must be called after
  /// the last AddObservation and before statistics are read.
  void Seal();

  /// Stats for a type, or nullptr when the type is absent in this result.
  const TypeStats* Find(TypeId type) const;

  /// True iff the type occurs in this result.
  bool HasType(TypeId type) const { return Find(type) != nullptr; }

  /// All types present, sorted by type id. Valid after Seal().
  const std::vector<TypeStats>& types() const { return types_; }

  /// Number of distinct feature types.
  size_t NumTypes() const { return types_.size(); }

  /// Total number of (type, value) features.
  size_t NumFeatures() const;

 private:
  std::string label_;
  std::vector<TypeStats> types_;             // sorted by type_id after Seal
  std::unordered_map<TypeId, size_t> index_; // type_id -> position
  bool sealed_ = false;
};

}  // namespace xsact::feature

#endif  // XSACT_FEATURE_RESULT_FEATURES_H_
