// Feature extractor: turns a search-result subtree into ResultFeatures
// (the "Feature Extractor" box of the XSACT architecture, Figure 3).
//
// Extraction rules (see DESIGN.md §2 and feature.h):
//  * Every leaf element is an attribute observation attached to its
//    nearest ENTITY ancestor (or the result root).
//  * A MULTI_ATTRIBUTE leaf (repeated among siblings, e.g. <pro>) yields
//    a value-qualified type: (entity, "pro: compact") with feature value
//    "yes" — exactly the paper's Pro:Compact:Yes features whose
//    occurrence is the number of entity instances agreeing.
//  * A single-valued ATTRIBUTE leaf (e.g. <rating>) yields the type
//    (entity, "rating") and one feature per distinct value, counting how
//    many entity instances carry that value.
//  * The occurrence of a type is its total count; the cardinality is the
//    number of instances of the owning entity inside the result ("# of
//    reviews: 11"), so relative occurrence reproduces the paper's 8/11 =
//    73% arithmetic.

#ifndef XSACT_FEATURE_EXTRACTOR_H_
#define XSACT_FEATURE_EXTRACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "entity/category_index.h"
#include "entity/entity_identifier.h"
#include "feature/catalog.h"
#include "feature/result_features.h"
#include "xml/node.h"
#include "xml/path.h"

namespace xsact::feature {

/// Options controlling extraction.
struct ExtractorOptions {
  /// Lowercase values before interning (makes "Auto" == "auto").
  bool fold_value_case = true;
  /// Maximum length of a value string; longer text is truncated (free text
  /// such as review bodies is not a comparable feature).
  size_t max_value_length = 48;
  /// Skip leaf elements with empty text.
  bool skip_empty_values = true;
};

namespace internal {
struct ExtractionWorkspace;
}  // namespace internal

/// Owning handle to a reusable extraction workspace (local interners,
/// aggregation tables, text scratch). ALL mutable extraction state lives
/// here — a FeatureExtractor itself holds only options — so concurrency
/// is explicit: any number of threads may extract through one shared
/// const extractor as long as each brings its own scratch. Reusing one
/// scratch across sequential Extract calls keeps its hash tables and
/// buffers warm (cleared, capacity kept); reuse never changes output.
class ExtractionScratch {
 public:
  ExtractionScratch();
  ~ExtractionScratch();
  ExtractionScratch(ExtractionScratch&&) noexcept;
  ExtractionScratch& operator=(ExtractionScratch&&) noexcept;

 private:
  friend class FeatureExtractor;
  std::unique_ptr<internal::ExtractionWorkspace> impl_;
};

/// Extractor; the catalog accumulates interned types/values across all
/// results of a comparison. Stateless apart from its options: the
/// scratch-taking overloads are reentrant, and the convenience overloads
/// allocate a fresh scratch per call (prefer passing a pooled scratch on
/// hot paths — QuerySession owns one per serve session).
class FeatureExtractor {
 public:
  explicit FeatureExtractor(ExtractorOptions options = {});

  /// Extracts the features of the subtree rooted at `result_root`.
  /// `schema` must have been inferred from the corpus (or the result set),
  /// and `catalog` is shared across the results being compared.
  /// `cancel` is polled at a strided cadence; on expiry extraction stops
  /// early and returns a partial ResultFeatures — callers that passed an
  /// expirable token must Check() afterwards and discard the output.
  ResultFeatures Extract(const xml::Node& result_root,
                         const entity::EntitySchema& schema,
                         FeatureCatalog* catalog, ExtractionScratch* scratch,
                         const Cancellation& cancel = {}) const;

  /// Serve-path fast variant: extracts the subtree rooted at `root_id` as
  /// one linear sweep of its pre-order id range, reading the per-document
  /// category index instead of probing the schema per node. `index` must
  /// have been built from `table`. Produces output identical to the
  /// node-walk overload. Same partial-output-on-expiry contract.
  ResultFeatures Extract(const xml::NodeTable& table,
                         const entity::DocumentCategoryIndex& index,
                         xml::NodeId root_id, FeatureCatalog* catalog,
                         ExtractionScratch* scratch,
                         const Cancellation& cancel = {}) const;

  /// Convenience overloads: one fresh workspace per call.
  ResultFeatures Extract(const xml::Node& result_root,
                         const entity::EntitySchema& schema,
                         FeatureCatalog* catalog) const;
  ResultFeatures Extract(const xml::NodeTable& table,
                         const entity::DocumentCategoryIndex& index,
                         xml::NodeId root_id, FeatureCatalog* catalog) const;

 private:
  ExtractorOptions options_;
};

}  // namespace xsact::feature

#endif  // XSACT_FEATURE_EXTRACTOR_H_
