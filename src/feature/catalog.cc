#include "feature/catalog.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xsact::feature {

TypeId FeatureCatalog::InternType(std::string_view entity,
                                  std::string_view attribute) {
  const std::string_view key = ComposeTagKey(entity, attribute, &key_scratch_);
  const int32_t existing = keys_.Find(key);
  if (existing >= 0) return existing;
  const TypeId id = keys_.Intern(key);
  XSACT_CHECK(static_cast<size_t>(id) == entities_.size());
  entities_.emplace_back(entity);
  attributes_.emplace_back(attribute);
  return id;
}

TypeId FeatureCatalog::FindType(std::string_view entity,
                                std::string_view attribute) const {
  // Local buffer: FindType stays const-reentrant (a sealed catalog inside
  // a cached outcome may be probed by any number of threads).
  std::string scratch;
  return keys_.Find(ComposeTagKey(entity, attribute, &scratch));
}

const std::string& FeatureCatalog::EntityOf(TypeId id) const {
  XSACT_CHECK(id >= 0 && static_cast<size_t>(id) < entities_.size());
  return entities_[static_cast<size_t>(id)];
}

const std::string& FeatureCatalog::AttributeOf(TypeId id) const {
  XSACT_CHECK(id >= 0 && static_cast<size_t>(id) < attributes_.size());
  return attributes_[static_cast<size_t>(id)];
}

std::string FeatureCatalog::TypeName(TypeId id) const {
  return EntityOf(id) + "." + AttributeOf(id);
}

ValueId FeatureCatalog::InternValue(std::string_view value) {
  return values_.Intern(value);
}

ValueId FeatureCatalog::FindValue(std::string_view value) const {
  return values_.Find(value);
}

const std::string& FeatureCatalog::ValueOf(ValueId id) const {
  return values_.Lookup(id);
}

}  // namespace xsact::feature
