#include "feature/result_features.h"

#include <algorithm>

#include "common/macros.h"

namespace xsact::feature {

void ResultFeatures::AddObservation(TypeId type, ValueId value, double count,
                                    double cardinality) {
  XSACT_CHECK(!sealed_);
  XSACT_CHECK(type >= 0 && value >= 0 && count >= 0);
  auto it = index_.find(type);
  TypeStats* stats;
  if (it == index_.end()) {
    index_.emplace(type, types_.size());
    types_.push_back(TypeStats{});
    stats = &types_.back();
    stats->type_id = type;
  } else {
    stats = &types_[it->second];
  }
  stats->occurrence += count;
  stats->entity_cardinality = std::max(stats->entity_cardinality, cardinality);
  for (ValueCount& vc : stats->values) {
    if (vc.value_id == value) {
      vc.count += count;
      return;
    }
  }
  stats->values.push_back(ValueCount{value, count});
}

void ResultFeatures::Seal() {
  XSACT_CHECK(!sealed_);
  std::sort(types_.begin(), types_.end(),
            [](const TypeStats& a, const TypeStats& b) {
              return a.type_id < b.type_id;
            });
  index_.clear();
  for (size_t i = 0; i < types_.size(); ++i) {
    index_.emplace(types_[i].type_id, i);
    auto& values = types_[i].values;
    std::sort(values.begin(), values.end(),
              [](const ValueCount& a, const ValueCount& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.value_id < b.value_id;
              });
  }
  sealed_ = true;
}

const TypeStats* ResultFeatures::Find(TypeId type) const {
  auto it = index_.find(type);
  return it == index_.end() ? nullptr : &types_[it->second];
}

size_t ResultFeatures::NumFeatures() const {
  size_t n = 0;
  for (const TypeStats& t : types_) n += t.values.size();
  return n;
}

}  // namespace xsact::feature
