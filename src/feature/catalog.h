// FeatureCatalog: interns feature types and values across a result set.
//
// All results being compared share one catalog so that equality of types
// and values is integer equality, and so that tie-breaking (by id) is
// deterministic across runs.

#ifndef XSACT_FEATURE_CATALOG_H_
#define XSACT_FEATURE_CATALOG_H_

#include <string>
#include <string_view>

#include "common/interner.h"
#include "feature/feature.h"

namespace xsact::feature {

/// Interner for (entity, attribute) feature types and value strings.
class FeatureCatalog {
 public:
  /// Interns a feature type; idempotent.
  TypeId InternType(std::string_view entity, std::string_view attribute);

  /// Looks up a type id, or kInvalidTypeId when never interned.
  TypeId FindType(std::string_view entity, std::string_view attribute) const;

  /// Entity half of a type ("review" of "(review, pro: compact)").
  const std::string& EntityOf(TypeId id) const;

  /// Attribute half of a type ("pro: compact").
  const std::string& AttributeOf(TypeId id) const;

  /// Pretty "entity.attribute" rendering for display.
  std::string TypeName(TypeId id) const;

  /// Interns / looks up a value string.
  ValueId InternValue(std::string_view value);
  ValueId FindValue(std::string_view value) const;
  const std::string& ValueOf(ValueId id) const;

  size_t NumTypes() const { return entities_.size(); }
  size_t NumValues() const { return values_.size(); }

 private:
  StringInterner keys_;                 // "entity\x1fattribute" -> TypeId
  std::vector<std::string> entities_;   // TypeId -> entity
  std::vector<std::string> attributes_; // TypeId -> attribute
  StringInterner values_;
  /// Key-composition buffer for the mutating InternType path. A catalog
  /// is per-comparison state (one writer during extraction; read-only —
  /// and then safely shared — once the outcome is built).
  std::string key_scratch_;
};

}  // namespace xsact::feature

#endif  // XSACT_FEATURE_CATALOG_H_
